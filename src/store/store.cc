#include "store/store.h"

#include <algorithm>
#include <cctype>
#include <chrono>

#include <cstdio>

#include "placement/comm.h"
#include "solver/from_ir.h"
#include "solver/oracle.h"
#include "store/serialize.h"
#include "support/io.h"
#include "support/logging.h"
#include "support/tracing.h"

namespace tessel {

namespace {

/** Shared tail of both verification entry points: instantiate at
 * NR + 1 and run the oracle's full constraint check. */
VerifyOutcome
verifyPlanSchedule(const TesselResult &result)
{
    VerifyOutcome out;
    if (result.period != result.plan.period()) {
        out.reason = "result period != plan period";
        return out;
    }
    // Instantiate at NR + 1 — one extra micro-batch beyond the smallest
    // supported N, so the verification exercises the periodic layout (a
    // second window instance at stride P) and the cooldown retiming,
    // not just the solved phases — then run the oracle's full
    // constraint check (dependencies, device/link exclusivity, release
    // times, peak memory) on the materialized schedule.
    if (result.plan.minMicrobatches() < 1) {
        out.reason = "plan supports no micro-batches";
        return out;
    }
    const int n = result.plan.minMicrobatches() + 1;
    std::string inst_err;
    const std::optional<Schedule> sched =
        result.plan.tryInstantiate(n, &inst_err);
    if (!sched) {
        out.reason = "plan failed to instantiate: " + inst_err;
        return out;
    }
    const Problem prob = result.plan.problemFor(n);
    const SolverProblem solver_prob = buildFullInstance(prob);
    const std::vector<Time> starts = startsFromSchedule(prob, *sched);
    const OracleVerdict verdict = verifySolverSchedule(solver_prob, starts);
    if (!verdict.ok) {
        out.reason = "oracle rejected instantiated schedule: " +
                     verdict.message;
        return out;
    }
    out.ok = true;
    return out;
}

} // namespace

VerifyOutcome
verifyResultAgainstQuery(const Placement &placement,
                         const TesselOptions &options,
                         const TesselResult &result)
{
    VerifyOutcome out;

    // A cached "no plan found" is a legitimate answer (the fingerprint
    // covers the budgets that produced it); there is nothing to check.
    if (!result.found) {
        if (result.plan.placement().numBlocks() != 0) {
            out.reason = "not-found result carries a plan";
            return out;
        }
        out.ok = true;
        return out;
    }

    // The stored plan must schedule exactly the placement this query
    // would search: the comm-expanded placement when the query is
    // comm-aware, the original otherwise. Recomputing the expansion
    // here is what ties a comm-aware entry to the cluster model of the
    // *current* query rather than whatever produced the file.
    const bool comm_aware =
        options.cluster &&
        !options.cluster->isTrivial(placement.numDevices());
    if (comm_aware != result.commAware) {
        out.reason = "comm-awareness mismatch between query and entry";
        return out;
    }
    // Placements compare *structurally* (display names ignored): the
    // fingerprint excludes names, so a query differing only in names
    // maps to this entry and must be served by it, not rejected.
    if (comm_aware) {
        const CommExpansion expected = expandWithComm(
            placement, *options.cluster, options.edgeMB, options.comm);
        if (!result.plan.placement().structurallyEquals(
                expected.placement)) {
            out.reason = "stored plan placement != comm-expanded query "
                         "placement";
            return out;
        }
        // The projection maps come from disk too; consumers use them to
        // map the comm-aware schedule back onto the caller's blocks, so
        // they must equal the recomputed expansion exactly.
        if (!result.expansion ||
            !result.expansion->placement.structurallyEquals(
                expected.placement) ||
            result.expansion->numRealDevices != expected.numRealDevices ||
            result.expansion->numLinks != expected.numLinks ||
            result.expansion->origSpec != expected.origSpec ||
            result.expansion->indexSpec != expected.indexSpec ||
            result.expansion->linkEndpoints != expected.linkEndpoints) {
            out.reason = "stored expansion inconsistent with query";
            return out;
        }
    } else if (!result.plan.placement().structurallyEquals(placement)) {
        out.reason = "stored plan placement != query placement";
        return out;
    }

    return verifyPlanSchedule(result);
}

VerifyOutcome
verifyResultSelfConsistent(const TesselResult &result)
{
    VerifyOutcome out;
    if (!result.found) {
        if (result.plan.placement().numBlocks() != 0) {
            out.reason = "not-found result carries a plan";
            return out;
        }
        out.ok = true;
        return out;
    }
    // No query context: the plan is checked against its own placement.
    // A comm-aware entry must at least carry its expansion maps.
    if (result.commAware && !result.expansion) {
        out.reason = "comm-aware result without expansion";
        return out;
    }
    return verifyPlanSchedule(result);
}

// ----------------------------------------------------------- PlanStore

PlanStore::PlanStore(std::string dir) : dir_(std::move(dir))
{
    migrateFlatEntries();
}

std::string
PlanStore::shardDirFor(const Hash128 &fp) const
{
    return dir_ + "/" + fp.hex().substr(0, 2);
}

std::string
PlanStore::pathFor(const Hash128 &fp) const
{
    return shardDirFor(fp) + "/" + fp.hex() + ".plan";
}

std::string
PlanStore::metaPathFor(const Hash128 &fp) const
{
    return shardDirFor(fp) + "/" + fp.hex() + ".meta";
}

std::string
PlanStore::flatPathFor(const Hash128 &fp, const char *suffix) const
{
    return dir_ + "/" + fp.hex() + suffix;
}

void
PlanStore::migrateFlatEntries()
{
    // Lazy layout upgrade: rename every flat (pre-sharding) entry into
    // its prefix shard. rename(2) is atomic and fails cleanly if a
    // concurrent opener won the race, so migration is idempotent and
    // safe under concurrent opens; readers additionally fall back to
    // the flat path, so an entry is visible at every point in between.
    for (const char *suffix : {".plan", ".meta"}) {
        for (const std::string &name : listDirFiles(dir_, suffix)) {
            Hash128 fp;
            const size_t stem = name.size() - 5;
            if (!Hash128::fromHex(name.substr(0, stem), &fp))
                continue;
            std::string err;
            if (!ensureDir(shardDirFor(fp), &err)) {
                warn("plan store: ", err);
                continue;
            }
            const std::string from = dir_ + "/" + name;
            const std::string to = shardDirFor(fp) + "/" + name;
            ::rename(from.c_str(), to.c_str());
        }
    }
}

bool
PlanStore::put(const Hash128 &fp, const std::string &bytes)
{
    std::string err;
    if (!ensureDir(shardDirFor(fp), &err)) {
        warn("plan store: ", err);
        return false;
    }
    if (!writeFileAtomic(pathFor(fp), bytes, &err)) {
        warn("plan store: ", err);
        return false;
    }
    return true;
}

bool
PlanStore::putMeta(const Hash128 &fp, const std::string &bytes)
{
    std::string err;
    if (!ensureDir(shardDirFor(fp), &err)) {
        warn("plan store: ", err);
        return false;
    }
    if (!writeFileAtomic(metaPathFor(fp), bytes, &err)) {
        warn("plan store: ", err);
        return false;
    }
    return true;
}

bool
PlanStore::get(const Hash128 &fp, std::string *bytes) const
{
    std::string path = pathFor(fp);
    if (!fileExists(path)) {
        // Entry published by a pre-sharding writer after our open.
        path = flatPathFor(fp, ".plan");
        if (!fileExists(path))
            return false;
    }
    std::string err;
    if (!readFile(path, bytes, &err)) {
        warn("plan store: ", err);
        return false;
    }
    return true;
}

bool
PlanStore::has(const Hash128 &fp) const
{
    return fileExists(pathFor(fp)) || fileExists(flatPathFor(fp, ".plan"));
}

bool
PlanStore::getMeta(const Hash128 &fp, std::string *bytes) const
{
    std::string path = metaPathFor(fp);
    if (!fileExists(path)) {
        path = flatPathFor(fp, ".meta");
        if (!fileExists(path))
            return false;
    }
    std::string err;
    if (!readFile(path, bytes, &err)) {
        warn("plan store: ", err);
        return false;
    }
    return true;
}

bool
PlanStore::remove(const Hash128 &fp)
{
    const bool removed =
        removeFile(pathFor(fp)) && removeFile(flatPathFor(fp, ".plan"));
    removeMeta(fp);
    return removed;
}

bool
PlanStore::removeMeta(const Hash128 &fp)
{
    return removeFile(metaPathFor(fp)) &&
           removeFile(flatPathFor(fp, ".meta"));
}

std::vector<Hash128>
PlanStore::listSuffix(const std::string &suffix) const
{
    std::vector<Hash128> out;
    auto collect = [&](const std::string &dir) {
        for (const std::string &name : listDirFiles(dir, suffix)) {
            Hash128 fp;
            if (Hash128::fromHex(name.substr(0, name.size() - 5), &fp))
                out.push_back(fp);
        }
    };
    collect(dir_); // legacy flat entries
    for (const std::string &shard : listDirSubdirs(dir_)) {
        // Prefix shards are exactly two hex digits; skip foreign dirs.
        if (shard.size() == 2 &&
            std::isxdigit(static_cast<unsigned char>(shard[0])) &&
            std::isxdigit(static_cast<unsigned char>(shard[1])))
            collect(dir_ + "/" + shard);
    }
    return out;
}

std::vector<Hash128>
PlanStore::list() const
{
    return listSuffix(".plan");
}

std::vector<Hash128>
PlanStore::listMetas() const
{
    return listSuffix(".meta");
}

// ----------------------------------------------------------- PlanCache

PlanCache::PlanCache(std::string dir, PlanCacheOptions options)
    : store_(std::move(dir)), options_(options)
{
    // Distribute the requested capacity exactly: every unit of
    // memoryCapacity lands in exactly one shard (low shards absorb the
    // remainder one entry each), and a capacity below the shard count
    // clamps the shard count instead of silently inflating capacity.
    const size_t capacity = std::max<size_t>(1, options_.memoryCapacity);
    const size_t nshards =
        std::max<size_t>(1, std::min(options_.shards, capacity));
    shards_.reserve(nshards);
    for (size_t s = 0; s < nshards; ++s) {
        auto shard = std::make_unique<Shard>();
        shard->capacity = capacity / nshards + (s < capacity % nshards);
        shard->snap = std::make_shared<Snapshot>();
        shards_.push_back(std::move(shard));
    }

    // Rebuild the neighbor index from the sidecars already on disk so a
    // reopened store seeds searches immediately. A sidecar that fails
    // to decode, or whose recorded fingerprint disagrees with its file
    // name, is skipped; a sidecar whose .plan entry is gone is an
    // orphan — its neighbor candidates could never be fetched — so it
    // is deleted here rather than indexed.
    for (const Hash128 &fp : store_.listMetas()) {
        if (!store_.has(fp)) {
            store_.removeMeta(fp);
            gcRemoved_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        std::string bytes;
        InstanceMeta meta;
        if (store_.getMeta(fp, &bytes) && deserializeMeta(bytes, &meta) &&
            meta.fingerprint == fp) {
            neighborIndex_.add(meta);
        }
    }

    // Mirror StoreStats into the metrics registry. Counters are
    // registered up front (collectors must not register) and fed
    // monotone deltas at snapshot time, so `store.*` always equals the
    // sum of the per-instance StoreStats.
    MetricsRegistry &reg = MetricsRegistry::instance();
    metrics_.memoryHits = reg.counter("store.memory_hits");
    metrics_.diskHits = reg.counter("store.disk_hits");
    metrics_.misses = reg.counter("store.misses");
    metrics_.stores = reg.counter("store.stores");
    metrics_.verifyFailures = reg.counter("store.verify_failures");
    metrics_.evictions = reg.counter("store.evictions");
    metrics_.lockContended = reg.counter("store.lock_contended");
    metrics_.neighborFetches = reg.counter("store.neighbor_fetches");
    metrics_.revalidated = reg.counter("store.revalidated");
    metrics_.gcRemoved = reg.counter("store.gc_removed");
    collectorId_ = reg.addCollector([this] { mirrorMetrics(); });
}

PlanCache::~PlanCache()
{
    MetricsRegistry::instance().removeCollector(collectorId_);
    stopRevalidation();
}

void
PlanCache::mirrorMetrics()
{
    // Skip (keeping mirrored_ untouched) while metrics are disabled:
    // inc() would drop the delta, and a later re-enable should pick up
    // from wherever the mirror last published.
    if (!MetricsRegistry::enabled())
        return;
    const StoreStats cur = stats();
    metrics_.memoryHits->inc(cur.memoryHits - mirrored_.memoryHits);
    metrics_.diskHits->inc(cur.diskHits - mirrored_.diskHits);
    metrics_.misses->inc(cur.misses - mirrored_.misses);
    metrics_.stores->inc(cur.stores - mirrored_.stores);
    metrics_.verifyFailures->inc(cur.verifyFailures -
                                 mirrored_.verifyFailures);
    metrics_.evictions->inc(cur.evictions - mirrored_.evictions);
    metrics_.lockContended->inc(cur.lockContended -
                                mirrored_.lockContended);
    metrics_.neighborFetches->inc(cur.neighborFetches -
                                  mirrored_.neighborFetches);
    metrics_.revalidated->inc(cur.revalidated - mirrored_.revalidated);
    metrics_.gcRemoved->inc(cur.gcRemoved - mirrored_.gcRemoved);
    mirrored_ = cur;
}

PlanCache::Shard &
PlanCache::shardFor(const Hash128 &fp)
{
    return *shards_[Hash128Hasher()(fp) % shards_.size()];
}

const PlanCache::Shard &
PlanCache::shardFor(const Hash128 &fp) const
{
    return *shards_[Hash128Hasher()(fp) % shards_.size()];
}

std::shared_ptr<const PlanCache::Snapshot>
PlanCache::loadSnapshot(const Shard &shard) const
{
    return std::atomic_load_explicit(&shard.snap,
                                     std::memory_order_acquire);
}

std::unique_lock<std::mutex>
PlanCache::lockWriter(Shard &shard)
{
    std::unique_lock<std::mutex> lock(shard.writerMu, std::try_to_lock);
    if (!lock.owns_lock()) {
        lockContended_.fetch_add(1, std::memory_order_relaxed);
        lock.lock();
    }
    return lock;
}

std::optional<TesselResult>
PlanCache::get(const Hash128 &fp, const Placement &placement,
               const TesselOptions &options, Source *source)
{
    if (source)
        *source = Source::Miss;
    Shard &shard = shardFor(fp);

    // Hot path: lock-free snapshot lookup. The access stamp feeds the
    // approximate-LRU eviction; relaxed order suffices (it only ranks
    // entries, it never orders memory).
    {
        const std::shared_ptr<const Snapshot> snap = loadSnapshot(shard);
        const auto it = snap->map.find(fp);
        if (it != snap->map.end()) {
            it->second.lastUsed->store(
                tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
            shard.memoryHits.fetch_add(1, std::memory_order_relaxed);
            if (source)
                *source = Source::Memory;
            return *it->second.result;
        }
    }

    // Disk tier: read, decode, and verify without holding any lock so
    // slow entries do not serialize unrelated readers.
    std::string bytes;
    {
        TraceSpan span("disk-io");
        if (!store_.get(fp, &bytes)) {
            shard.misses.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        span.setArg("bytes", bytes.size());
    }

    LoadedResult loaded = deserializeResult(bytes);
    if (loaded.ok && loaded.fingerprint != fp) {
        loaded.ok = false;
        loaded.error = "entry fingerprint does not match its file name";
    }
    if (loaded.ok && options_.verifyOnLoad) {
        TraceSpan span("verify");
        const VerifyOutcome verdict =
            verifyResultAgainstQuery(placement, options, loaded.result);
        if (!verdict.ok) {
            loaded.ok = false;
            loaded.error = verdict.reason;
        }
    }
    if (!loaded.ok) {
        warn("plan store: rejecting entry ", fp.hex(), ": ", loaded.error);
        shard.verifyFailures.fetch_add(1, std::memory_order_relaxed);
        // The entry can never serve this fingerprint again; leaving it
        // (or its sidecar) behind would re-reject on every lookup and
        // dangle neighbor candidates whose fetch cannot succeed.
        removeRejectedEntry(fp);
        return std::nullopt;
    }

    shard.diskHits.fetch_add(1, std::memory_order_relaxed);
    insertMemory(shard, fp, loaded.result);
    if (source)
        *source = Source::Disk;
    return std::move(loaded.result);
}

void
PlanCache::put(const Hash128 &fp, const Placement &placement,
               const TesselOptions &options, const TesselResult &result)
{
    // Sidecar first, in-memory index last: once the instance is
    // discoverable through the index its plan bytes are already
    // published, so a neighbor lookup can always peek() what it found.
    // A crash between the writes leaves at worst an orphan sidecar,
    // which the next open garbage-collects.
    const InstanceMeta meta = computeInstanceMeta(placement, options);
    store_.putMeta(fp, serializeMeta(meta));
    put(fp, result);
    neighborIndex_.add(meta);
}

void
PlanCache::put(const Hash128 &fp, const TesselResult &result)
{
    // Serialize and write outside the writer lock; publish the memory
    // snapshot under it.
    std::string bytes;
    {
        TraceSpan span("serialize");
        bytes = serializeResult(result, fp);
        span.setArg("bytes", bytes.size());
    }
    {
        TraceSpan span("disk-io");
        store_.put(fp, bytes);
    }
    Shard &shard = shardFor(fp);
    shard.stores.fetch_add(1, std::memory_order_relaxed);
    insertMemory(shard, fp, result);
}

std::optional<TesselResult>
PlanCache::peek(const Hash128 &fp)
{
    neighborFetches_.fetch_add(1, std::memory_order_relaxed);

    const Shard &shard = shardFor(fp);
    {
        const std::shared_ptr<const Snapshot> snap = loadSnapshot(shard);
        const auto it = snap->map.find(fp);
        // No access stamp: a neighbor fetch is not a query for this
        // entry and must not keep it alive over genuinely hot ones.
        if (it != snap->map.end())
            return *it->second.result;
    }

    std::string bytes;
    if (!store_.get(fp, &bytes))
        return std::nullopt;
    LoadedResult loaded = deserializeResult(bytes);
    if (!loaded.ok || loaded.fingerprint != fp)
        return std::nullopt;
    // Deliberately unverified and not admitted to the memory tier: the
    // caller (store/adapt.cc) oracle-checks whatever it derives, and
    // the memory tier only ever holds entries verified for their own
    // fingerprint.
    return std::move(loaded.result);
}

void
PlanCache::remove(const Hash128 &fp)
{
    eraseMemory(shardFor(fp), fp);
    store_.remove(fp);
    neighborIndex_.remove(fp);
}

void
PlanCache::removeRejectedEntry(const Hash128 &fp)
{
    // The memory tier cannot hold a rejected entry (it only admits
    // verified ones), but purge defensively in case a concurrent put
    // raced the rejection.
    remove(fp);
    gcRemoved_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<NeighborIndex::Neighbor>
PlanCache::neighbors(const InstanceMeta &query, size_t k) const
{
    return neighborIndex_.nearest(query, k);
}

bool
PlanCache::neighborMeta(const Hash128 &fp, InstanceMeta *meta) const
{
    return neighborIndex_.find(fp, meta);
}

size_t
PlanCache::indexedInstances() const
{
    return neighborIndex_.size();
}

void
PlanCache::insertMemory(Shard &shard, const Hash128 &fp,
                        const TesselResult &result)
{
    auto lock = lockWriter(shard);
    const std::shared_ptr<const Snapshot> old = loadSnapshot(shard);
    auto next = std::make_shared<Snapshot>(*old);
    Entry &entry = next->map[fp];
    entry.result = std::make_shared<const TesselResult>(result);
    if (!entry.lastUsed)
        entry.lastUsed = std::make_shared<std::atomic<uint64_t>>(0);
    entry.lastUsed->store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
    while (next->map.size() > shard.capacity) {
        // Approximate LRU: evict the entry with the oldest access
        // stamp. The scan is O(shard size) but shards are small and
        // eviction only runs on admissions, never on the hit path.
        auto victim = next->map.begin();
        uint64_t oldest = victim->second.lastUsed->load(
            std::memory_order_relaxed);
        for (auto it = std::next(next->map.begin());
             it != next->map.end(); ++it) {
            const uint64_t used =
                it->second.lastUsed->load(std::memory_order_relaxed);
            if (used < oldest) {
                oldest = used;
                victim = it;
            }
        }
        next->map.erase(victim);
        shard.evictions.fetch_add(1, std::memory_order_relaxed);
    }
    std::atomic_store_explicit(
        &shard.snap,
        std::shared_ptr<const Snapshot>(std::move(next)),
        std::memory_order_release);
}

void
PlanCache::eraseMemory(Shard &shard, const Hash128 &fp)
{
    auto lock = lockWriter(shard);
    const std::shared_ptr<const Snapshot> old = loadSnapshot(shard);
    if (old->map.find(fp) == old->map.end())
        return;
    auto next = std::make_shared<Snapshot>(*old);
    next->map.erase(fp);
    std::atomic_store_explicit(
        &shard.snap,
        std::shared_ptr<const Snapshot>(std::move(next)),
        std::memory_order_release);
}

size_t
PlanCache::revalidateOnce()
{
    size_t removed = 0;

    // Pass 1: every plan entry must still decode to its own fingerprint
    // and pass the oracle's self-check. The reads and verification run
    // without any cache lock; only an actual removal briefly takes the
    // owning shard's writer lock.
    for (const Hash128 &fp : store_.list()) {
        std::string bytes;
        if (!store_.get(fp, &bytes))
            continue; // concurrently removed; nothing to do
        LoadedResult loaded = deserializeResult(bytes);
        bool ok = loaded.ok && loaded.fingerprint == fp;
        if (ok && options_.verifyOnLoad)
            ok = verifyResultSelfConsistent(loaded.result).ok;
        if (ok) {
            revalidated_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        warn("plan store: revalidation dropping entry ", fp.hex());
        remove(fp);
        gcRemoved_.fetch_add(1, std::memory_order_relaxed);
        ++removed;
    }

    // Pass 2: meta sidecars without a plan entry are orphans — their
    // neighbor candidates could never be fetched — so drop both the
    // file and any index entry.
    for (const Hash128 &fp : store_.listMetas()) {
        if (store_.has(fp))
            continue;
        store_.removeMeta(fp);
        neighborIndex_.remove(fp);
        gcRemoved_.fetch_add(1, std::memory_order_relaxed);
        ++removed;
    }
    return removed;
}

void
PlanCache::startRevalidation(double interval_sec)
{
    std::lock_guard<std::mutex> lock(revalMu_);
    if (revalRunning_)
        return;
    revalStop_ = false;
    revalRunning_ = true;
    const auto interval = std::chrono::duration<double>(
        std::max(interval_sec, 0.01));
    revalThread_ = std::thread([this, interval] {
        std::unique_lock<std::mutex> lock(revalMu_);
        while (!revalStop_) {
            if (revalCv_.wait_for(lock, interval,
                                  [this] { return revalStop_; }))
                break;
            lock.unlock();
            revalidateOnce();
            lock.lock();
        }
    });
}

void
PlanCache::stopRevalidation()
{
    {
        std::lock_guard<std::mutex> lock(revalMu_);
        if (!revalRunning_)
            return;
        revalStop_ = true;
    }
    revalCv_.notify_all();
    revalThread_.join();
    std::lock_guard<std::mutex> lock(revalMu_);
    revalRunning_ = false;
}

size_t
PlanCache::memoryCapacity() const
{
    size_t total = 0;
    for (const std::unique_ptr<Shard> &shard : shards_)
        total += shard->capacity;
    return total;
}

StoreStats
PlanCache::stats() const
{
    StoreStats out;
    for (const std::unique_ptr<Shard> &shard : shards_) {
        out.memoryHits += shard->memoryHits.load(std::memory_order_relaxed);
        out.diskHits += shard->diskHits.load(std::memory_order_relaxed);
        out.misses += shard->misses.load(std::memory_order_relaxed);
        out.stores += shard->stores.load(std::memory_order_relaxed);
        out.verifyFailures +=
            shard->verifyFailures.load(std::memory_order_relaxed);
        out.evictions += shard->evictions.load(std::memory_order_relaxed);
    }
    out.lockContended = lockContended_.load(std::memory_order_relaxed);
    out.neighborFetches = neighborFetches_.load(std::memory_order_relaxed);
    out.revalidated = revalidated_.load(std::memory_order_relaxed);
    out.gcRemoved = gcRemoved_.load(std::memory_order_relaxed);
    return out;
}

} // namespace tessel
