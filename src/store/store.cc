#include "store/store.h"

#include <algorithm>

#include "placement/comm.h"
#include "solver/from_ir.h"
#include "solver/oracle.h"
#include "store/serialize.h"
#include "support/io.h"
#include "support/logging.h"

namespace tessel {

VerifyOutcome
verifyResultAgainstQuery(const Placement &placement,
                         const TesselOptions &options,
                         const TesselResult &result)
{
    VerifyOutcome out;

    // A cached "no plan found" is a legitimate answer (the fingerprint
    // covers the budgets that produced it); there is nothing to check.
    if (!result.found) {
        if (result.plan.placement().numBlocks() != 0) {
            out.reason = "not-found result carries a plan";
            return out;
        }
        out.ok = true;
        return out;
    }

    // The stored plan must schedule exactly the placement this query
    // would search: the comm-expanded placement when the query is
    // comm-aware, the original otherwise. Recomputing the expansion
    // here is what ties a comm-aware entry to the cluster model of the
    // *current* query rather than whatever produced the file.
    const bool comm_aware =
        options.cluster &&
        !options.cluster->isTrivial(placement.numDevices());
    if (comm_aware != result.commAware) {
        out.reason = "comm-awareness mismatch between query and entry";
        return out;
    }
    // Placements compare *structurally* (display names ignored): the
    // fingerprint excludes names, so a query differing only in names
    // maps to this entry and must be served by it, not rejected.
    if (comm_aware) {
        const CommExpansion expected = expandWithComm(
            placement, *options.cluster, options.edgeMB, options.comm);
        if (!result.plan.placement().structurallyEquals(
                expected.placement)) {
            out.reason = "stored plan placement != comm-expanded query "
                         "placement";
            return out;
        }
        // The projection maps come from disk too; consumers use them to
        // map the comm-aware schedule back onto the caller's blocks, so
        // they must equal the recomputed expansion exactly.
        if (!result.expansion ||
            !result.expansion->placement.structurallyEquals(
                expected.placement) ||
            result.expansion->numRealDevices != expected.numRealDevices ||
            result.expansion->numLinks != expected.numLinks ||
            result.expansion->origSpec != expected.origSpec ||
            result.expansion->indexSpec != expected.indexSpec ||
            result.expansion->linkEndpoints != expected.linkEndpoints) {
            out.reason = "stored expansion inconsistent with query";
            return out;
        }
    } else if (!result.plan.placement().structurallyEquals(placement)) {
        out.reason = "stored plan placement != query placement";
        return out;
    }

    if (result.period != result.plan.period()) {
        out.reason = "result period != plan period";
        return out;
    }

    // Instantiate at NR + 1 — one extra micro-batch beyond the smallest
    // supported N, so the verification exercises the periodic layout (a
    // second window instance at stride P) and the cooldown retiming,
    // not just the solved phases — then run the oracle's full
    // constraint check (dependencies, device/link exclusivity, release
    // times, peak memory) on the materialized schedule.
    if (result.plan.minMicrobatches() < 1) {
        out.reason = "plan supports no micro-batches";
        return out;
    }
    const int n = result.plan.minMicrobatches() + 1;
    std::string inst_err;
    const std::optional<Schedule> sched =
        result.plan.tryInstantiate(n, &inst_err);
    if (!sched) {
        out.reason = "plan failed to instantiate: " + inst_err;
        return out;
    }
    const Problem prob = result.plan.problemFor(n);
    const SolverProblem solver_prob = buildFullInstance(prob);
    const std::vector<Time> starts = startsFromSchedule(prob, *sched);
    const OracleVerdict verdict = verifySolverSchedule(solver_prob, starts);
    if (!verdict.ok) {
        out.reason = "oracle rejected instantiated schedule: " +
                     verdict.message;
        return out;
    }

    out.ok = true;
    return out;
}

// ----------------------------------------------------------- PlanStore

PlanStore::PlanStore(std::string dir) : dir_(std::move(dir)) {}

std::string
PlanStore::pathFor(const Hash128 &fp) const
{
    return dir_ + "/" + fp.hex() + ".plan";
}

std::string
PlanStore::metaPathFor(const Hash128 &fp) const
{
    return dir_ + "/" + fp.hex() + ".meta";
}

bool
PlanStore::put(const Hash128 &fp, const std::string &bytes)
{
    std::string err;
    if (!ensureDir(dir_, &err)) {
        warn("plan store: ", err);
        return false;
    }
    if (!writeFileAtomic(pathFor(fp), bytes, &err)) {
        warn("plan store: ", err);
        return false;
    }
    return true;
}

bool
PlanStore::putMeta(const Hash128 &fp, const std::string &bytes)
{
    std::string err;
    if (!ensureDir(dir_, &err)) {
        warn("plan store: ", err);
        return false;
    }
    if (!writeFileAtomic(metaPathFor(fp), bytes, &err)) {
        warn("plan store: ", err);
        return false;
    }
    return true;
}

bool
PlanStore::get(const Hash128 &fp, std::string *bytes) const
{
    const std::string path = pathFor(fp);
    if (!fileExists(path))
        return false;
    std::string err;
    if (!readFile(path, bytes, &err)) {
        warn("plan store: ", err);
        return false;
    }
    return true;
}

bool
PlanStore::getMeta(const Hash128 &fp, std::string *bytes) const
{
    const std::string path = metaPathFor(fp);
    if (!fileExists(path))
        return false;
    std::string err;
    if (!readFile(path, bytes, &err)) {
        warn("plan store: ", err);
        return false;
    }
    return true;
}

bool
PlanStore::remove(const Hash128 &fp)
{
    const bool removed = removeFile(pathFor(fp));
    removeFile(metaPathFor(fp));
    return removed;
}

std::vector<Hash128>
PlanStore::list() const
{
    std::vector<Hash128> out;
    for (const std::string &name : listDirFiles(dir_, ".plan")) {
        Hash128 fp;
        if (Hash128::fromHex(name.substr(0, name.size() - 5), &fp))
            out.push_back(fp);
    }
    return out;
}

std::vector<Hash128>
PlanStore::listMetas() const
{
    std::vector<Hash128> out;
    for (const std::string &name : listDirFiles(dir_, ".meta")) {
        Hash128 fp;
        if (Hash128::fromHex(name.substr(0, name.size() - 5), &fp))
            out.push_back(fp);
    }
    return out;
}

// ----------------------------------------------------------- PlanCache

PlanCache::PlanCache(std::string dir, PlanCacheOptions options)
    : store_(std::move(dir)), options_(options)
{
    if (options_.shards == 0)
        options_.shards = 1;
    perShardCapacity_ =
        std::max<size_t>(1, options_.memoryCapacity / options_.shards);
    shards_.reserve(options_.shards);
    for (size_t s = 0; s < options_.shards; ++s)
        shards_.push_back(std::make_unique<Shard>());

    // Rebuild the neighbor index from the sidecars already on disk so a
    // reopened store seeds searches immediately. A sidecar that fails
    // to decode, or whose recorded fingerprint disagrees with its file
    // name, is skipped (the .plan entry still serves exact hits).
    for (const Hash128 &fp : store_.listMetas()) {
        std::string bytes;
        InstanceMeta meta;
        if (store_.getMeta(fp, &bytes) && deserializeMeta(bytes, &meta) &&
            meta.fingerprint == fp) {
            neighborIndex_.add(meta);
        }
    }
}

PlanCache::Shard &
PlanCache::shardFor(const Hash128 &fp)
{
    return *shards_[Hash128Hasher()(fp) % shards_.size()];
}

const PlanCache::Shard &
PlanCache::shardFor(const Hash128 &fp) const
{
    return *shards_[Hash128Hasher()(fp) % shards_.size()];
}

std::unique_lock<std::mutex>
PlanCache::lockShard(const Shard &shard) const
{
    std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
    if (!lock.owns_lock()) {
        lockContended_.fetch_add(1, std::memory_order_relaxed);
        lock.lock();
    }
    return lock;
}

std::optional<TesselResult>
PlanCache::get(const Hash128 &fp, const Placement &placement,
               const TesselOptions &options, Source *source)
{
    if (source)
        *source = Source::Miss;
    Shard &shard = shardFor(fp);

    {
        auto lock = lockShard(shard);
        const auto it = shard.index.find(fp);
        if (it != shard.index.end()) {
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            ++shard.stats.memoryHits;
            if (source)
                *source = Source::Memory;
            return it->second->second;
        }
    }

    // Disk tier: read, decode, and verify outside the lock so slow
    // entries do not serialize unrelated readers.
    std::string bytes;
    if (!store_.get(fp, &bytes)) {
        auto lock = lockShard(shard);
        ++shard.stats.misses;
        return std::nullopt;
    }

    LoadedResult loaded = deserializeResult(bytes);
    if (loaded.ok && loaded.fingerprint != fp) {
        loaded.ok = false;
        loaded.error = "entry fingerprint does not match its file name";
    }
    if (loaded.ok && options_.verifyOnLoad) {
        const VerifyOutcome verdict =
            verifyResultAgainstQuery(placement, options, loaded.result);
        if (!verdict.ok) {
            loaded.ok = false;
            loaded.error = verdict.reason;
        }
    }
    if (!loaded.ok) {
        warn("plan store: rejecting entry ", fp.hex(), ": ", loaded.error);
        auto lock = lockShard(shard);
        ++shard.stats.verifyFailures;
        return std::nullopt;
    }

    auto lock = lockShard(shard);
    ++shard.stats.diskHits;
    insertMemory(shard, fp, loaded.result);
    if (source)
        *source = Source::Disk;
    return std::move(loaded.result);
}

void
PlanCache::put(const Hash128 &fp, const Placement &placement,
               const TesselOptions &options, const TesselResult &result)
{
    // Sidecar first, in-memory index last: once the instance is
    // discoverable through the index its plan bytes are already
    // published, so a neighbor lookup can always peek() what it found.
    // A crash between the writes leaves at worst an orphan sidecar,
    // which reopening tolerates (peek() simply fails).
    const InstanceMeta meta = computeInstanceMeta(placement, options);
    store_.putMeta(fp, serializeMeta(meta));
    put(fp, result);
    neighborIndex_.add(meta);
}

void
PlanCache::put(const Hash128 &fp, const TesselResult &result)
{
    // Serialize and write outside the lock; admit to memory under it.
    const std::string bytes = serializeResult(result, fp);
    store_.put(fp, bytes);
    Shard &shard = shardFor(fp);
    auto lock = lockShard(shard);
    ++shard.stats.stores;
    insertMemory(shard, fp, result);
}

std::optional<TesselResult>
PlanCache::peek(const Hash128 &fp)
{
    neighborFetches_.fetch_add(1, std::memory_order_relaxed);

    Shard &shard = shardFor(fp);
    {
        auto lock = lockShard(shard);
        const auto it = shard.index.find(fp);
        // No LRU touch: a neighbor fetch is not a query for this entry
        // and must not keep it alive over genuinely hot ones.
        if (it != shard.index.end())
            return it->second->second;
    }

    std::string bytes;
    if (!store_.get(fp, &bytes))
        return std::nullopt;
    LoadedResult loaded = deserializeResult(bytes);
    if (!loaded.ok || loaded.fingerprint != fp)
        return std::nullopt;
    // Deliberately unverified and not admitted to the memory tier: the
    // caller (store/adapt.cc) oracle-checks whatever it derives, and
    // the memory tier only ever holds entries verified for their own
    // fingerprint.
    return std::move(loaded.result);
}

std::vector<NeighborIndex::Neighbor>
PlanCache::neighbors(const InstanceMeta &query, size_t k) const
{
    return neighborIndex_.nearest(query, k);
}

bool
PlanCache::neighborMeta(const Hash128 &fp, InstanceMeta *meta) const
{
    return neighborIndex_.find(fp, meta);
}

size_t
PlanCache::indexedInstances() const
{
    return neighborIndex_.size();
}

void
PlanCache::insertMemory(Shard &shard, const Hash128 &fp,
                        const TesselResult &result)
{
    // Caller holds the shard lock.
    const auto it = shard.index.find(fp);
    if (it != shard.index.end()) {
        it->second->second = result;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.emplace_front(fp, result);
    shard.index[fp] = shard.lru.begin();
    while (shard.lru.size() > perShardCapacity_ && !shard.lru.empty()) {
        shard.index.erase(shard.lru.back().first);
        shard.lru.pop_back();
        ++shard.stats.evictions;
    }
}

StoreStats
PlanCache::stats() const
{
    StoreStats out;
    for (const std::unique_ptr<Shard> &shard : shards_) {
        auto lock = lockShard(*shard);
        out.memoryHits += shard->stats.memoryHits;
        out.diskHits += shard->stats.diskHits;
        out.misses += shard->stats.misses;
        out.stores += shard->stats.stores;
        out.verifyFailures += shard->stats.verifyFailures;
        out.evictions += shard->stats.evictions;
    }
    out.lockContended = lockContended_.load(std::memory_order_relaxed);
    out.neighborFetches = neighborFetches_.load(std::memory_order_relaxed);
    return out;
}

} // namespace tessel
