#include "store/store.h"

#include "placement/comm.h"
#include "solver/from_ir.h"
#include "solver/oracle.h"
#include "store/serialize.h"
#include "support/io.h"
#include "support/logging.h"

namespace tessel {

VerifyOutcome
verifyResultAgainstQuery(const Placement &placement,
                         const TesselOptions &options,
                         const TesselResult &result)
{
    VerifyOutcome out;

    // A cached "no plan found" is a legitimate answer (the fingerprint
    // covers the budgets that produced it); there is nothing to check.
    if (!result.found) {
        if (result.plan.placement().numBlocks() != 0) {
            out.reason = "not-found result carries a plan";
            return out;
        }
        out.ok = true;
        return out;
    }

    // The stored plan must schedule exactly the placement this query
    // would search: the comm-expanded placement when the query is
    // comm-aware, the original otherwise. Recomputing the expansion
    // here is what ties a comm-aware entry to the cluster model of the
    // *current* query rather than whatever produced the file.
    const bool comm_aware =
        options.cluster &&
        !options.cluster->isTrivial(placement.numDevices());
    if (comm_aware != result.commAware) {
        out.reason = "comm-awareness mismatch between query and entry";
        return out;
    }
    // Placements compare *structurally* (display names ignored): the
    // fingerprint excludes names, so a query differing only in names
    // maps to this entry and must be served by it, not rejected.
    if (comm_aware) {
        const CommExpansion expected = expandWithComm(
            placement, *options.cluster, options.edgeMB, options.comm);
        if (!result.plan.placement().structurallyEquals(
                expected.placement)) {
            out.reason = "stored plan placement != comm-expanded query "
                         "placement";
            return out;
        }
        // The projection maps come from disk too; consumers use them to
        // map the comm-aware schedule back onto the caller's blocks, so
        // they must equal the recomputed expansion exactly.
        if (!result.expansion ||
            !result.expansion->placement.structurallyEquals(
                expected.placement) ||
            result.expansion->numRealDevices != expected.numRealDevices ||
            result.expansion->numLinks != expected.numLinks ||
            result.expansion->origSpec != expected.origSpec ||
            result.expansion->indexSpec != expected.indexSpec ||
            result.expansion->linkEndpoints != expected.linkEndpoints) {
            out.reason = "stored expansion inconsistent with query";
            return out;
        }
    } else if (!result.plan.placement().structurallyEquals(placement)) {
        out.reason = "stored plan placement != query placement";
        return out;
    }

    if (result.period != result.plan.period()) {
        out.reason = "result period != plan period";
        return out;
    }

    // Instantiate at NR + 1 — one extra micro-batch beyond the smallest
    // supported N, so the verification exercises the periodic layout (a
    // second window instance at stride P) and the cooldown retiming,
    // not just the solved phases — then run the oracle's full
    // constraint check (dependencies, device/link exclusivity, release
    // times, peak memory) on the materialized schedule.
    if (result.plan.minMicrobatches() < 1) {
        out.reason = "plan supports no micro-batches";
        return out;
    }
    const int n = result.plan.minMicrobatches() + 1;
    std::string inst_err;
    const std::optional<Schedule> sched =
        result.plan.tryInstantiate(n, &inst_err);
    if (!sched) {
        out.reason = "plan failed to instantiate: " + inst_err;
        return out;
    }
    const Problem prob = result.plan.problemFor(n);
    const SolverProblem solver_prob = buildFullInstance(prob);
    const std::vector<Time> starts = startsFromSchedule(prob, *sched);
    const OracleVerdict verdict = verifySolverSchedule(solver_prob, starts);
    if (!verdict.ok) {
        out.reason = "oracle rejected instantiated schedule: " +
                     verdict.message;
        return out;
    }

    out.ok = true;
    return out;
}

// ----------------------------------------------------------- PlanStore

PlanStore::PlanStore(std::string dir) : dir_(std::move(dir)) {}

std::string
PlanStore::pathFor(const Hash128 &fp) const
{
    return dir_ + "/" + fp.hex() + ".plan";
}

bool
PlanStore::put(const Hash128 &fp, const std::string &bytes)
{
    std::string err;
    if (!ensureDir(dir_, &err)) {
        warn("plan store: ", err);
        return false;
    }
    if (!writeFileAtomic(pathFor(fp), bytes, &err)) {
        warn("plan store: ", err);
        return false;
    }
    return true;
}

bool
PlanStore::get(const Hash128 &fp, std::string *bytes) const
{
    const std::string path = pathFor(fp);
    if (!fileExists(path))
        return false;
    std::string err;
    if (!readFile(path, bytes, &err)) {
        warn("plan store: ", err);
        return false;
    }
    return true;
}

bool
PlanStore::remove(const Hash128 &fp)
{
    return removeFile(pathFor(fp));
}

std::vector<Hash128>
PlanStore::list() const
{
    std::vector<Hash128> out;
    for (const std::string &name : listDirFiles(dir_, ".plan")) {
        Hash128 fp;
        if (Hash128::fromHex(name.substr(0, name.size() - 5), &fp))
            out.push_back(fp);
    }
    return out;
}

// ----------------------------------------------------------- PlanCache

PlanCache::PlanCache(std::string dir, PlanCacheOptions options)
    : store_(std::move(dir)), options_(options)
{
}

std::optional<TesselResult>
PlanCache::get(const Hash128 &fp, const Placement &placement,
               const TesselOptions &options, Source *source)
{
    if (source)
        *source = Source::Miss;

    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = index_.find(fp);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++stats_.memoryHits;
            if (source)
                *source = Source::Memory;
            return it->second->second;
        }
    }

    // Disk tier: read, decode, and verify outside the lock so slow
    // entries do not serialize unrelated readers.
    std::string bytes;
    if (!store_.get(fp, &bytes)) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.misses;
        return std::nullopt;
    }

    LoadedResult loaded = deserializeResult(bytes);
    if (loaded.ok && loaded.fingerprint != fp) {
        loaded.ok = false;
        loaded.error = "entry fingerprint does not match its file name";
    }
    if (loaded.ok && options_.verifyOnLoad) {
        const VerifyOutcome verdict =
            verifyResultAgainstQuery(placement, options, loaded.result);
        if (!verdict.ok) {
            loaded.ok = false;
            loaded.error = verdict.reason;
        }
    }
    if (!loaded.ok) {
        warn("plan store: rejecting entry ", fp.hex(), ": ", loaded.error);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.verifyFailures;
        return std::nullopt;
    }

    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.diskHits;
    insertMemory(fp, loaded.result);
    if (source)
        *source = Source::Disk;
    return std::move(loaded.result);
}

void
PlanCache::put(const Hash128 &fp, const TesselResult &result)
{
    // Serialize and write outside the lock; admit to memory under it.
    const std::string bytes = serializeResult(result, fp);
    store_.put(fp, bytes);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.stores;
    insertMemory(fp, result);
}

void
PlanCache::insertMemory(const Hash128 &fp, const TesselResult &result)
{
    // Caller holds mu_.
    const auto it = index_.find(fp);
    if (it != index_.end()) {
        it->second->second = result;
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(fp, result);
    index_[fp] = lru_.begin();
    while (lru_.size() > options_.memoryCapacity && !lru_.empty()) {
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

StoreStats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace tessel
