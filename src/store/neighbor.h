/**
 * @file
 * Similarity layer over the plan store: per-instance metadata (component
 * sub-fingerprints plus a cheap numeric feature vector) persisted as a
 * `<fingerprint>.meta` sidecar next to each `.plan` entry, and an
 * in-memory NeighborIndex answering "which stored instances most
 * resemble this missed query?".
 *
 * The feature vector summarizes the lowered instance in a handful of
 * scalars — device/block/stage counts, work totals, a log-bucketed span
 * histogram, the memory cap, the NR sweep cap, and a link-speed summary
 * of the cluster model — so distance evaluation is a few dozen floating
 * point operations per stored instance. The index is a linear scan:
 * plan stores hold hundreds to thousands of entries, where a scan is
 * both faster and simpler than any tree structure, and results are
 * deterministic (ties broken by fingerprint).
 *
 * Nothing here decides correctness: a neighbor is only a *hint*, and
 * store/adapt.h re-verifies every adapted plan against the query before
 * it can influence a search (which the seed-only-prunes invariant then
 * keeps bit-identical to cold anyway).
 */

#ifndef TESSEL_STORE_NEIGHBOR_H
#define TESSEL_STORE_NEIGHBOR_H

#include <array>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "store/fingerprint.h"

namespace tessel {

/** Meta sidecar format version (bump on any layout change). */
constexpr uint32_t kMetaFormatVersion = 1;

/** Magic prefix of every .meta sidecar. */
constexpr char kMetaMagic[8] = {'T', 'E', 'S', 'S', 'E', 'L', 'N', 'M'};

/** Number of scalar features per instance. */
constexpr size_t kFeatureCount = 16;

/** Feature-vector slots (all stored as doubles). */
enum InstanceFeature : size_t {
    kFeatDevices = 0,    ///< real device count
    kFeatBlocks,         ///< block-spec count (original placement)
    kFeatStages,         ///< distinct device masks among blocks
    kFeatTotalWork,      ///< sum of spans
    kFeatCriticalPath,   ///< longest dependency chain
    kFeatNrCap,          ///< maxRepetendMicrobatches
    kFeatMemLimit,       ///< memLimit clamped to kMemLimitFeatureCap
    kFeatSpanHist0,      ///< span histogram, log2 bucket [1, 2)
    kFeatSpanHist1,      ///< bucket [2, 4)
    kFeatSpanHist2,      ///< bucket [4, 8)
    kFeatSpanHist3,      ///< bucket [8, inf)
    kFeatLinkLatency,    ///< default link latency (0 when homogeneous)
    kFeatLinkTimePerMB,  ///< default link inverse bandwidth
    kFeatMeanSpeed,      ///< mean device speed factor
    kFeatMaxSpeed,       ///< slowest device's speed factor
    kFeatEdgeVolume,     ///< total MB over edges the placement has
};

/** Clamp applied to the memLimit feature so kUnlimitedMem stays finite
 * and cannot dominate every distance. */
constexpr double kMemLimitFeatureCap = 1 << 20;

/** Everything the neighbor index knows about one stored instance. */
struct InstanceMeta
{
    /** Full canonical fingerprint (the store key). */
    Hash128 fingerprint;
    /** Per-component digests (exact-match structure signals). */
    SubFingerprints sub;
    /** Digest of the phase-completion-relevant options
     * (phaseOptionsDigest): agreement licenses exact reuse of a
     * neighbor's phase schedules during adaptation. */
    Hash128 phaseOptions;
    /** Cheap numeric summary (graded similarity signals). */
    std::array<double, kFeatureCount> features{};
};

/** @return the meta record of a query/lowered instance. */
InstanceMeta computeInstanceMeta(const Placement &placement,
                                 const TesselOptions &options);

/** Serialize @p meta to sidecar bytes (versioned, checksummed). */
std::string serializeMeta(const InstanceMeta &meta);

/** Decode sidecar bytes; @return false on any malformed input. */
bool deserializeMeta(const std::string &bytes, InstanceMeta *meta);

/**
 * Weighted distance between two instances: squared relative feature
 * differences plus fixed penalties per disagreeing sub-fingerprint
 * (a placement mismatch outranks any cluster-model drift, which in
 * turn outranks an options drift). Zero iff the metas are identical
 * in every component the index can see.
 */
double neighborDistance(const InstanceMeta &a, const InstanceMeta &b);

/**
 * k-nearest-neighbor index over instance metas. Thread-safe; entries
 * are replaced in place when the same fingerprint is added twice.
 */
class NeighborIndex
{
  public:
    struct Neighbor
    {
        Hash128 fingerprint;
        double distance = 0.0;
    };

    /** Insert or replace the entry for @p meta's fingerprint. */
    void add(const InstanceMeta &meta);

    /** Drop the entry for @p fp; @return true when it existed. */
    bool remove(const Hash128 &fp);

    /** Copy the stored meta for @p fp into @p meta; @return false when
     * no such entry is indexed. */
    bool find(const Hash128 &fp, InstanceMeta *meta) const;

    size_t size() const;

    /**
     * The @p k stored instances nearest to @p query, ascending by
     * (distance, fingerprint) — fully deterministic. An entry whose
     * fingerprint equals the query's own is excluded (that is an exact
     * hit, the cache's job, not a neighbor).
     */
    std::vector<Neighbor> nearest(const InstanceMeta &query,
                                  size_t k) const;

  private:
    mutable std::mutex mu_;
    std::vector<InstanceMeta> metas_;
    std::unordered_map<Hash128, size_t, Hash128Hasher> index_;
};

} // namespace tessel

#endif // TESSEL_STORE_NEIGHBOR_H
