/**
 * @file
 * Plan store: a concurrent in-memory LRU cache in front of an on-disk
 * store of serialized TesselResults, keyed by canonical instance
 * fingerprints (store/fingerprint.h).
 *
 * Disk layout: one file per fingerprint, `<32-hex-digits>.plan`, under
 * the cache directory, published atomically (temp file + rename), so
 * any number of concurrent readers — including other processes — only
 * ever observe complete entries.
 *
 * Verification-on-load invariant: a disk entry is never trusted. Before
 * a deserialized result is returned or admitted to the memory tier, the
 * plan is re-verified against the *querying* instance: the stored
 * placement must structurally equal the placement the query would
 * search (the comm-expanded one for comm-aware queries), the plan must
 * instantiate cleanly, and the instantiated schedule must pass the
 * solver oracle's full constraint check (solver/oracle.h — dependency
 * order, device and link exclusivity, release times, peak memory).
 * Entries that fail any step count as verifyFailures and behave as
 * misses, so a corrupted or version-bumped store degrades to a fresh
 * search, never to a wrong plan. Memory-tier entries were either
 * produced by this process's search or already verified on load, and
 * are returned as-is.
 */

#ifndef TESSEL_STORE_STORE_H
#define TESSEL_STORE_STORE_H

#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/search.h"
#include "store/fingerprint.h"

namespace tessel {

/** Hit/miss/verification counters of one PlanCache. */
struct StoreStats
{
    uint64_t memoryHits = 0;
    uint64_t diskHits = 0;   ///< served from disk after verification
    uint64_t misses = 0;     ///< absent from both tiers
    uint64_t stores = 0;     ///< results admitted via put()
    uint64_t verifyFailures = 0; ///< disk entries rejected on load
    uint64_t evictions = 0;  ///< memory-tier LRU evictions

    uint64_t
    hits() const
    {
        return memoryHits + diskHits;
    }

    uint64_t
    lookups() const
    {
        return hits() + misses + verifyFailures;
    }

    /** @return hits / lookups in [0, 1] (0 when no lookups happened). */
    double
    hitRate() const
    {
        const uint64_t total = lookups();
        return total == 0 ? 0.0
                          : static_cast<double>(hits()) /
                                static_cast<double>(total);
    }
};

/** Outcome of re-verifying a loaded result against its query. */
struct VerifyOutcome
{
    bool ok = false;
    std::string reason;
};

/**
 * Re-verify @p result against the instance (@p placement, @p options)
 * via the solver oracle. Cheap relative to a search: one instantiation
 * at N = NR + 1 — the extra micro-batch forces a second repetend
 * window at stride P, so the period itself is exercised (at N = NR the
 * period is unused and a tampered one would pass) — plus a linear
 * constraint sweep. Pure function, safe to call concurrently.
 */
VerifyOutcome verifyResultAgainstQuery(const Placement &placement,
                                       const TesselOptions &options,
                                       const TesselResult &result);

/** On-disk tier: one atomically-published file per fingerprint. */
class PlanStore
{
  public:
    /** @param dir cache directory; created (mkdir -p) on first put. */
    explicit PlanStore(std::string dir);

    const std::string &dir() const { return dir_; }

    /** @return the entry path for @p fp (exists or not). */
    std::string pathFor(const Hash128 &fp) const;

    /** Publish serialized bytes for @p fp; false + warn on I/O errors. */
    bool put(const Hash128 &fp, const std::string &bytes);

    /** Read raw entry bytes; false when absent or unreadable. */
    bool get(const Hash128 &fp, std::string *bytes) const;

    /** Remove the entry for @p fp (idempotent). */
    bool remove(const Hash128 &fp);

    /** @return fingerprints of all entries currently on disk. */
    std::vector<Hash128> list() const;

  private:
    std::string dir_;
};

/** Construction knobs for PlanCache. */
struct PlanCacheOptions
{
    /** Max results kept in the memory tier before LRU eviction. */
    size_t memoryCapacity = 256;
    /** Re-verify disk entries via the oracle before trusting them. */
    bool verifyOnLoad = true;
};

/**
 * Two-tier cache: LRU memory tier over a PlanStore disk tier. All
 * public methods are safe to call from any number of threads (one
 * internal mutex; disk I/O and verification run outside it, so
 * concurrent readers of distinct entries do not serialize on the
 * expensive parts).
 */
class PlanCache
{
  public:
    explicit PlanCache(std::string dir, PlanCacheOptions options = {});

    /** Where a get() answer came from. */
    enum class Source { Memory, Disk, Miss };

    /**
     * Look up @p fp. Disk answers are deserialized and verified against
     * (@p placement, @p options) per the verification-on-load
     * invariant, then promoted into the memory tier. @return nullopt on
     * miss or verification failure (@p source tells which tier
     * answered).
     */
    std::optional<TesselResult> get(const Hash128 &fp,
                                    const Placement &placement,
                                    const TesselOptions &options,
                                    Source *source = nullptr);

    /** Admit a freshly searched result to both tiers. */
    void put(const Hash128 &fp, const TesselResult &result);

    StoreStats stats() const;

    const PlanStore &store() const { return store_; }

  private:
    void insertMemory(const Hash128 &fp, const TesselResult &result);

    PlanStore store_;
    PlanCacheOptions options_;

    mutable std::mutex mu_;
    /** Most-recent first; entries own their result copy. */
    std::list<std::pair<Hash128, TesselResult>> lru_;
    std::unordered_map<Hash128,
                       std::list<std::pair<Hash128, TesselResult>>::iterator,
                       Hash128Hasher>
        index_;
    StoreStats stats_;
};

} // namespace tessel

#endif // TESSEL_STORE_STORE_H
