/**
 * @file
 * Plan store: a concurrent in-memory LRU cache in front of an on-disk
 * store of serialized TesselResults, keyed by canonical instance
 * fingerprints (store/fingerprint.h).
 *
 * Disk layout: one file per fingerprint, `<32-hex-digits>.plan`, under
 * the cache directory, published atomically (temp file + rename), so
 * any number of concurrent readers — including other processes — only
 * ever observe complete entries. Entries admitted with their query
 * context additionally publish a `<32-hex-digits>.meta` sidecar (sub-
 * fingerprints + feature vector, store/neighbor.h) that feeds the
 * neighbor index; a store without sidecars still serves exact hits.
 *
 * Verification-on-load invariant: a disk entry is never trusted. Before
 * a deserialized result is returned or admitted to the memory tier, the
 * plan is re-verified against the *querying* instance: the stored
 * placement must structurally equal the placement the query would
 * search (the comm-expanded one for comm-aware queries), the plan must
 * instantiate cleanly, and the instantiated schedule must pass the
 * solver oracle's full constraint check (solver/oracle.h — dependency
 * order, device and link exclusivity, release times, peak memory).
 * Entries that fail any step count as verifyFailures and behave as
 * misses, so a corrupted or version-bumped store degrades to a fresh
 * search, never to a wrong plan. Memory-tier entries were either
 * produced by this process's search or already verified on load, and
 * are returned as-is. The one exception is peek(), which fetches a
 * *neighbor's* entry raw — it cannot be verified against the caller's
 * query (it answers a different fingerprint) and is only ever consumed
 * by store/adapt.cc, which runs the same oracle on the adapted plan
 * before anything downstream may use it.
 *
 * Concurrency: the memory tier is sharded by fingerprint — hit-path
 * lookups only contend when two threads race for the same shard, so the
 * reader-mostly service batch path scales with its thread pool instead
 * of serializing on one cache mutex. Failed lock acquisitions are
 * counted (StoreStats::lockContended) so contention is observable.
 */

#ifndef TESSEL_STORE_STORE_H
#define TESSEL_STORE_STORE_H

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/search.h"
#include "store/fingerprint.h"
#include "store/neighbor.h"

namespace tessel {

/** Hit/miss/verification counters of one PlanCache. */
struct StoreStats
{
    uint64_t memoryHits = 0;
    uint64_t diskHits = 0;   ///< served from disk after verification
    uint64_t misses = 0;     ///< absent from both tiers
    uint64_t stores = 0;     ///< results admitted via put()
    uint64_t verifyFailures = 0; ///< disk entries rejected on load
    uint64_t evictions = 0;  ///< memory-tier LRU evictions
    /** Shard-mutex acquisitions that found the lock already held (the
     * try-lock failed and the caller had to block). */
    uint64_t lockContended = 0;
    /** Raw neighbor-entry fetches via peek() (not query lookups; they
     * never count toward hits/misses). */
    uint64_t neighborFetches = 0;

    uint64_t
    hits() const
    {
        return memoryHits + diskHits;
    }

    uint64_t
    lookups() const
    {
        return hits() + misses + verifyFailures;
    }

    /** @return hits / lookups in [0, 1] (0 when no lookups happened). */
    double
    hitRate() const
    {
        const uint64_t total = lookups();
        return total == 0 ? 0.0
                          : static_cast<double>(hits()) /
                                static_cast<double>(total);
    }
};

/** Outcome of re-verifying a loaded result against its query. */
struct VerifyOutcome
{
    bool ok = false;
    std::string reason;
};

/**
 * Re-verify @p result against the instance (@p placement, @p options)
 * via the solver oracle. Cheap relative to a search: one instantiation
 * at N = NR + 1 — the extra micro-batch forces a second repetend
 * window at stride P, so the period itself is exercised (at N = NR the
 * period is unused and a tampered one would pass) — plus a linear
 * constraint sweep. Pure function, safe to call concurrently.
 */
VerifyOutcome verifyResultAgainstQuery(const Placement &placement,
                                       const TesselOptions &options,
                                       const TesselResult &result);

/** On-disk tier: one atomically-published file per fingerprint. */
class PlanStore
{
  public:
    /** @param dir cache directory; created (mkdir -p) on first put. */
    explicit PlanStore(std::string dir);

    const std::string &dir() const { return dir_; }

    /** @return the entry path for @p fp (exists or not). */
    std::string pathFor(const Hash128 &fp) const;

    /** @return the meta-sidecar path for @p fp (exists or not). */
    std::string metaPathFor(const Hash128 &fp) const;

    /** Publish serialized bytes for @p fp; false + warn on I/O errors. */
    bool put(const Hash128 &fp, const std::string &bytes);

    /** Publish the meta sidecar for @p fp; false + warn on errors. */
    bool putMeta(const Hash128 &fp, const std::string &bytes);

    /** Read raw entry bytes; false when absent or unreadable. */
    bool get(const Hash128 &fp, std::string *bytes) const;

    /** Read raw sidecar bytes; false when absent or unreadable. */
    bool getMeta(const Hash128 &fp, std::string *bytes) const;

    /** Remove the entry (and sidecar) for @p fp (idempotent). */
    bool remove(const Hash128 &fp);

    /** @return fingerprints of all entries currently on disk. */
    std::vector<Hash128> list() const;

    /** @return fingerprints of all meta sidecars currently on disk. */
    std::vector<Hash128> listMetas() const;

  private:
    std::string dir_;
};

/** Construction knobs for PlanCache. */
struct PlanCacheOptions
{
    /** Max results kept in the memory tier before LRU eviction, split
     * evenly across shards (each shard holds at least one). */
    size_t memoryCapacity = 256;
    /** Re-verify disk entries via the oracle before trusting them. */
    bool verifyOnLoad = true;
    /** Memory-tier shard count (>= 1; fingerprints hash to shards).
     * 1 restores the single-mutex behavior, with global LRU order. */
    size_t shards = 8;
};

/**
 * Two-tier cache: sharded LRU memory tier over a PlanStore disk tier,
 * plus a neighbor index over the meta sidecars for near-miss lookups.
 * All public methods are safe to call from any number of threads; disk
 * I/O and verification run outside the shard locks, so concurrent
 * readers do not serialize on the expensive parts, and readers of
 * distinct shards do not serialize at all.
 */
class PlanCache
{
  public:
    explicit PlanCache(std::string dir, PlanCacheOptions options = {});

    /** Where a get() answer came from. */
    enum class Source { Memory, Disk, Miss };

    /**
     * Look up @p fp. Disk answers are deserialized and verified against
     * (@p placement, @p options) per the verification-on-load
     * invariant, then promoted into the memory tier. @return nullopt on
     * miss or verification failure (@p source tells which tier
     * answered).
     */
    std::optional<TesselResult> get(const Hash128 &fp,
                                    const Placement &placement,
                                    const TesselOptions &options,
                                    Source *source = nullptr);

    /**
     * Admit a freshly searched result to both tiers, publish its meta
     * sidecar, and index it for neighbor lookups. (@p placement,
     * @p options) must be the query that produced @p fp.
     */
    void put(const Hash128 &fp, const Placement &placement,
             const TesselOptions &options, const TesselResult &result);

    /**
     * Admit a result without query context: both cache tiers are
     * updated but no meta sidecar is written, so the entry serves exact
     * hits only and never appears as a neighbor.
     */
    void put(const Hash128 &fp, const TesselResult &result);

    /**
     * Raw fetch of a (neighbor) entry: memory tier first, then disk
     * decode with a fingerprint check — but NO oracle verification and
     * NO memory-tier admission. Only store/adapt.cc should consume the
     * result, and it must re-verify whatever it derives. Counts as a
     * neighborFetch, never as a hit or miss.
     */
    std::optional<TesselResult> peek(const Hash128 &fp);

    /** The @p k indexed instances nearest to @p query (see
     * NeighborIndex::nearest; the query's own fingerprint is excluded). */
    std::vector<NeighborIndex::Neighbor>
    neighbors(const InstanceMeta &query, size_t k) const;

    /** Copy the indexed meta of a stored instance into @p meta;
     * @return false when @p fp is not in the neighbor index. Adaptation
     * callers compare the stored phaseOptions digest against the
     * query's to decide whether phase schedules may be reused verbatim. */
    bool neighborMeta(const Hash128 &fp, InstanceMeta *meta) const;

    /** Number of instances currently in the neighbor index. */
    size_t indexedInstances() const;

    StoreStats stats() const;

    const PlanStore &store() const { return store_; }

  private:
    using LruList = std::list<std::pair<Hash128, TesselResult>>;

    /** One memory-tier shard: its own lock, LRU order, and counters. */
    struct Shard
    {
        mutable std::mutex mu;
        LruList lru;
        std::unordered_map<Hash128, LruList::iterator, Hash128Hasher> index;
        StoreStats stats; // Only the per-shard counters are used.
    };

    Shard &shardFor(const Hash128 &fp);
    const Shard &shardFor(const Hash128 &fp) const;

    /** Lock @p shard, counting the acquisition as contended when the
     * uncontended try-lock fails. */
    std::unique_lock<std::mutex> lockShard(const Shard &shard) const;

    /** Insert under the shard lock (caller holds it). */
    void insertMemory(Shard &shard, const Hash128 &fp,
                      const TesselResult &result);

    PlanStore store_;
    PlanCacheOptions options_;
    size_t perShardCapacity_;

    std::vector<std::unique_ptr<Shard>> shards_;
    mutable std::atomic<uint64_t> lockContended_{0};
    std::atomic<uint64_t> neighborFetches_{0};

    NeighborIndex neighborIndex_;
};

} // namespace tessel

#endif // TESSEL_STORE_STORE_H
