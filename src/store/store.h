/**
 * @file
 * Plan store: a concurrent in-memory cache in front of an on-disk
 * store of serialized TesselResults, keyed by canonical instance
 * fingerprints (store/fingerprint.h).
 *
 * Disk layout: sharded by fingerprint prefix. An entry lives at
 * `<dir>/<2-hex>/<32-hex-digits>.plan`, where `<2-hex>` is the first
 * byte of the fingerprint in hex, published atomically (temp file +
 * rename), so any number of concurrent readers — including other
 * processes and machines sharing the directory — only ever observe
 * complete entries. Pre-sharding stores (entries directly under
 * `<dir>/`) are migrated lazily on open: each flat file is renamed
 * into its prefix directory (atomic, idempotent, safe under races —
 * two openers at worst both succeed), and reads fall back to the flat
 * path so entries published by not-yet-upgraded writers stay visible.
 * Entries admitted with their query context additionally publish a
 * `<32-hex-digits>.meta` sidecar (sub-fingerprints + feature vector,
 * store/neighbor.h) next to the `.plan` that feeds the neighbor
 * index; a store without sidecars still serves exact hits.
 *
 * Verification-on-load invariant: a disk entry is never trusted. Before
 * a deserialized result is returned or admitted to the memory tier, the
 * plan is re-verified against the *querying* instance: the stored
 * placement must structurally equal the placement the query would
 * search (the comm-expanded one for comm-aware queries), the plan must
 * instantiate cleanly, and the instantiated schedule must pass the
 * solver oracle's full constraint check (solver/oracle.h — dependency
 * order, device and link exclusivity, release times, peak memory).
 * Entries that fail any step count as verifyFailures and behave as
 * misses — and are garbage-collected on the spot (plan file, meta
 * sidecar, and neighbor-index entry removed together) so a corrupted
 * entry is rejected once, not on every future lookup. A corrupted or
 * version-bumped store therefore degrades to a fresh search, never to
 * a wrong plan. Memory-tier entries were either produced by this
 * process's search or already verified on load, and are returned
 * as-is. The one exception is peek(), which fetches a *neighbor's*
 * entry raw — it cannot be verified against the caller's query (it
 * answers a different fingerprint) and is only ever consumed by
 * store/adapt.cc, which runs the same oracle on the adapted plan
 * before anything downstream may use it.
 *
 * Concurrency: the memory tier is sharded by fingerprint, and within a
 * shard the hot hit path is RCU-style and never blocks. Each shard
 * publishes an immutable snapshot (shared_ptr to a read-only hash map);
 * readers load the snapshot pointer atomically, look up their entry,
 * and stamp a relaxed per-entry access tick for the eviction policy —
 * no mutex, no waiting, no matter how many writers are active. Writers
 * (admissions, promotions, evictions, purges) serialize on a per-shard
 * writer mutex, build the next snapshot aside, and publish it with an
 * atomic pointer store. StoreStats::lockContended counts writer-side
 * acquisitions that had to block; a read-only trace keeps it at exactly
 * zero, which the daemon tests and bench_service_load enforce as the
 * lock-free-hit regression signal.
 *
 * Background revalidation: startRevalidation() spawns one maintenance
 * thread that periodically re-reads every disk entry, drops entries
 * that no longer decode or whose plans fail the oracle's self-check,
 * and garbage-collects orphaned meta sidecars. It runs entirely off
 * the serving path (raw disk reads plus brief writer-side purges), so
 * serving latency is unaffected while the shared namespace converges
 * on verified entries.
 */

#ifndef TESSEL_STORE_STORE_H
#define TESSEL_STORE_STORE_H

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/search.h"
#include "store/fingerprint.h"
#include "store/neighbor.h"
#include "support/metrics.h"

namespace tessel {

/**
 * Hit/miss/verification counters of one PlanCache.
 *
 * Counter definitions (each get() increments exactly one of the first
 * three): `memoryHits` + `diskHits` are lookups answered from a tier,
 * `misses` are lookups absent from both tiers, and `verifyFailures`
 * are lookups whose disk entry existed but was rejected (decode or
 * oracle failure) — from the caller's perspective those behave as
 * misses, but they are counted separately because each one names a
 * store entry that was removed.
 */
struct StoreStats
{
    uint64_t memoryHits = 0;
    uint64_t diskHits = 0;   ///< served from disk after verification
    uint64_t misses = 0;     ///< absent from both tiers
    uint64_t stores = 0;     ///< results admitted via put()
    uint64_t verifyFailures = 0; ///< disk entries rejected on load
    uint64_t evictions = 0;  ///< memory-tier evictions
    /** Writer-side shard-mutex acquisitions that found the lock already
     * held (the try-lock failed and the writer had to block). The hit
     * path takes no lock at all, so a read-only trace keeps this at 0. */
    uint64_t lockContended = 0;
    /** Raw neighbor-entry fetches via peek() (not query lookups; they
     * never count toward hits/misses). */
    uint64_t neighborFetches = 0;
    /** Disk entries re-verified intact by background revalidation. */
    uint64_t revalidated = 0;
    /** Stale artifacts garbage-collected: corrupt/unverifiable plan
     * entries and orphaned meta sidecars (revalidation or load-time). */
    uint64_t gcRemoved = 0;

    uint64_t
    hits() const
    {
        return memoryHits + diskHits;
    }

    /** Total get() calls: every lookup lands in exactly one bucket. */
    uint64_t
    lookups() const
    {
        return hits() + misses + verifyFailures;
    }

    /**
     * @return hits / lookups in [0, 1] (0 when no lookups happened).
     * The denominator is *lookups*, so a rejected (verify-failed) entry
     * counts against the rate exactly like a plain miss — this is the
     * store-level rate over every get() ever made, distinct from
     * BatchReport::hitRate() which is per-batch over unique instances.
     */
    double
    hitRate() const
    {
        const uint64_t total = lookups();
        return total == 0 ? 0.0
                          : static_cast<double>(hits()) /
                                static_cast<double>(total);
    }
};

/** Outcome of re-verifying a loaded result against its query. */
struct VerifyOutcome
{
    bool ok = false;
    std::string reason;
};

/**
 * Re-verify @p result against the instance (@p placement, @p options)
 * via the solver oracle. Cheap relative to a search: one instantiation
 * at N = NR + 1 — the extra micro-batch forces a second repetend
 * window at stride P, so the period itself is exercised (at N = NR the
 * period is unused and a tampered one would pass) — plus a linear
 * constraint sweep. Pure function, safe to call concurrently.
 */
VerifyOutcome verifyResultAgainstQuery(const Placement &placement,
                                       const TesselOptions &options,
                                       const TesselResult &result);

/**
 * Query-free self-check used by background revalidation: instantiate
 * the stored plan against its *own* placement at NR + 1 and run the
 * solver oracle. Catches rotted entries (plans that no longer satisfy
 * their own constraints) without needing the original query context;
 * the full query match still happens on every get().
 */
VerifyOutcome verifyResultSelfConsistent(const TesselResult &result);

/** On-disk tier: one atomically-published file per fingerprint, in a
 * `<2-hex>/` prefix shard directory (see file comment for layout and
 * the lazy flat-store migration). */
class PlanStore
{
  public:
    /** @param dir cache directory; created (mkdir -p) on first put.
     * If it already holds flat (pre-sharding) entries they are migrated
     * into prefix shards now. */
    explicit PlanStore(std::string dir);

    const std::string &dir() const { return dir_; }

    /** @return the sharded entry path for @p fp (exists or not). */
    std::string pathFor(const Hash128 &fp) const;

    /** @return the sharded meta-sidecar path for @p fp. */
    std::string metaPathFor(const Hash128 &fp) const;

    /** Publish serialized bytes for @p fp; false + warn on I/O errors. */
    bool put(const Hash128 &fp, const std::string &bytes);

    /** Publish the meta sidecar for @p fp; false + warn on errors. */
    bool putMeta(const Hash128 &fp, const std::string &bytes);

    /** Read raw entry bytes; false when absent or unreadable. Checks
     * the sharded path first, then the legacy flat path. */
    bool get(const Hash128 &fp, std::string *bytes) const;

    /** @return whether an entry exists for @p fp (either layout). */
    bool has(const Hash128 &fp) const;

    /** Read raw sidecar bytes; false when absent or unreadable. */
    bool getMeta(const Hash128 &fp, std::string *bytes) const;

    /** Remove the entry (and sidecar) for @p fp at both the sharded and
     * legacy flat locations (idempotent). */
    bool remove(const Hash128 &fp);

    /** Remove only the meta sidecar for @p fp (both locations). */
    bool removeMeta(const Hash128 &fp);

    /** @return fingerprints of all entries currently on disk. */
    std::vector<Hash128> list() const;

    /** @return fingerprints of all meta sidecars currently on disk. */
    std::vector<Hash128> listMetas() const;

  private:
    /** `<dir>/<2-hex>` prefix shard directory for @p fp. */
    std::string shardDirFor(const Hash128 &fp) const;

    /** Legacy flat path (pre-sharding layout). */
    std::string flatPathFor(const Hash128 &fp, const char *suffix) const;

    /** Rename any flat `.plan`/`.meta` files into their shards. */
    void migrateFlatEntries();

    std::vector<Hash128> listSuffix(const std::string &suffix) const;

    std::string dir_;
};

/** Construction knobs for PlanCache. */
struct PlanCacheOptions
{
    /** Max results kept in the memory tier before eviction. Distributed
     * exactly across shards (remainders go to the low shards one each);
     * when smaller than `shards` the shard count is clamped down so the
     * total evictable capacity always equals this value (floored at 1). */
    size_t memoryCapacity = 256;
    /** Re-verify disk entries via the oracle before trusting them. */
    bool verifyOnLoad = true;
    /** Memory-tier shard count (>= 1; fingerprints hash to shards).
     * 1 restores the single-snapshot behavior with global LRU order. */
    size_t shards = 8;
};

/**
 * Two-tier cache: sharded snapshot memory tier over a PlanStore disk
 * tier, plus a neighbor index over the meta sidecars for near-miss
 * lookups. All public methods are safe to call from any number of
 * threads; the hit path is lock-free (see file comment), and disk I/O
 * and verification run outside any lock, so concurrent readers never
 * serialize on the expensive parts.
 */
class PlanCache
{
  public:
    explicit PlanCache(std::string dir, PlanCacheOptions options = {});

    /** Joins the revalidation thread if one is running. */
    ~PlanCache();

    PlanCache(const PlanCache &) = delete;
    PlanCache &operator=(const PlanCache &) = delete;

    /** Where a get() answer came from. */
    enum class Source { Memory, Disk, Miss };

    /**
     * Look up @p fp. Disk answers are deserialized and verified against
     * (@p placement, @p options) per the verification-on-load
     * invariant, then promoted into the memory tier. A disk entry that
     * fails verification is removed (plan + sidecar + index entry).
     * @return nullopt on miss or verification failure (@p source tells
     * which tier answered).
     */
    std::optional<TesselResult> get(const Hash128 &fp,
                                    const Placement &placement,
                                    const TesselOptions &options,
                                    Source *source = nullptr);

    /**
     * Admit a freshly searched result to both tiers, publish its meta
     * sidecar, and index it for neighbor lookups. (@p placement,
     * @p options) must be the query that produced @p fp.
     */
    void put(const Hash128 &fp, const Placement &placement,
             const TesselOptions &options, const TesselResult &result);

    /**
     * Admit a result without query context: both cache tiers are
     * updated but no meta sidecar is written, so the entry serves exact
     * hits only and never appears as a neighbor.
     */
    void put(const Hash128 &fp, const TesselResult &result);

    /**
     * Raw fetch of a (neighbor) entry: memory tier first, then disk
     * decode with a fingerprint check — but NO oracle verification and
     * NO memory-tier admission. Only store/adapt.cc should consume the
     * result, and it must re-verify whatever it derives. Counts as a
     * neighborFetch, never as a hit or miss.
     */
    std::optional<TesselResult> peek(const Hash128 &fp);

    /**
     * Drop @p fp everywhere: memory tier, disk entry + sidecar, and
     * neighbor index. Idempotent; used by revalidation and tests.
     */
    void remove(const Hash128 &fp);

    /** The @p k indexed instances nearest to @p query (see
     * NeighborIndex::nearest; the query's own fingerprint is excluded). */
    std::vector<NeighborIndex::Neighbor>
    neighbors(const InstanceMeta &query, size_t k) const;

    /** Copy the indexed meta of a stored instance into @p meta;
     * @return false when @p fp is not in the neighbor index. Adaptation
     * callers compare the stored phaseOptions digest against the
     * query's to decide whether phase schedules may be reused verbatim. */
    bool neighborMeta(const Hash128 &fp, InstanceMeta *meta) const;

    /** Number of instances currently in the neighbor index. */
    size_t indexedInstances() const;

    /**
     * One synchronous revalidation sweep (the background thread calls
     * this on its interval; tests call it directly): re-read every disk
     * entry, drop the ones that fail to decode or whose plans fail the
     * oracle self-check, and delete orphaned meta sidecars.
     * @return number of artifacts garbage-collected by this sweep.
     */
    size_t revalidateOnce();

    /**
     * Start the background revalidation thread, sweeping every
     * @p interval_sec (clamped up to 10 ms). No-op when already
     * running. The thread is joined by stopRevalidation() or the
     * destructor; it never blocks serving threads.
     */
    void startRevalidation(double interval_sec);

    /** Stop and join the revalidation thread (idempotent). */
    void stopRevalidation();

    /** Total evictable memory-tier capacity (== the requested
     * memoryCapacity floored at 1; locked by test_store). */
    size_t memoryCapacity() const;

    StoreStats stats() const;

    const PlanStore &store() const { return store_; }

  private:
    /** One immutable memory-tier entry. `lastUsed` is shared across
     * snapshot generations so a reader's access stamp survives the
     * writer republishing the map around it. */
    struct Entry
    {
        std::shared_ptr<const TesselResult> result;
        std::shared_ptr<std::atomic<uint64_t>> lastUsed;
    };

    /** Immutable map generation; readers hold it via shared_ptr. */
    struct Snapshot
    {
        std::unordered_map<Hash128, Entry, Hash128Hasher> map;
    };

    /** One memory-tier shard: an atomically-published snapshot for
     * readers, a writer mutex, and relaxed stat counters. */
    struct Shard
    {
        /** Accessed only via atomic_load/atomic_store free functions. */
        std::shared_ptr<const Snapshot> snap;
        std::mutex writerMu;
        size_t capacity = 1;
        std::atomic<uint64_t> memoryHits{0};
        std::atomic<uint64_t> diskHits{0};
        std::atomic<uint64_t> misses{0};
        std::atomic<uint64_t> stores{0};
        std::atomic<uint64_t> verifyFailures{0};
        std::atomic<uint64_t> evictions{0};
    };

    Shard &shardFor(const Hash128 &fp);
    const Shard &shardFor(const Hash128 &fp) const;

    /** Reader-side snapshot load (lock-free; acquire order). */
    std::shared_ptr<const Snapshot> loadSnapshot(const Shard &shard) const;

    /** Writer lock, counting the acquisition as contended when the
     * uncontended try-lock fails. Readers never take this. */
    std::unique_lock<std::mutex> lockWriter(Shard &shard);

    /** Publish a snapshot with @p fp inserted/refreshed, evicting the
     * least-recently-stamped entries beyond the shard capacity. */
    void insertMemory(Shard &shard, const Hash128 &fp,
                      const TesselResult &result);

    /** Publish a snapshot with @p fp removed (no-op when absent). */
    void eraseMemory(Shard &shard, const Hash128 &fp);

    /** Drop a disk entry that failed load-time verification: plan
     * file, meta sidecar, and neighbor-index entry together. */
    void removeRejectedEntry(const Hash128 &fp);

    /** Snapshot-time collector body: feed the monotone delta of
     * stats() since the last mirror into the `store.*` registry
     * counters. StoreStats stays the tested source of truth; deltas
     * (not absolute sets) let several PlanCache instances sum into one
     * series. Runs only under the registry's collector lock. */
    void mirrorMetrics();

    PlanStore store_;
    PlanCacheOptions options_;

    std::vector<std::unique_ptr<Shard>> shards_;
    /** Global access clock for the approximate-LRU eviction stamps. */
    mutable std::atomic<uint64_t> tick_{0};
    mutable std::atomic<uint64_t> lockContended_{0};
    std::atomic<uint64_t> neighborFetches_{0};
    std::atomic<uint64_t> revalidated_{0};
    std::atomic<uint64_t> gcRemoved_{0};

    NeighborIndex neighborIndex_;

    // Registry mirror state (see mirrorMetrics()). Handles are
    // registered once in the constructor; the collector is removed in
    // the destructor, which blocks until any in-flight snapshot is done.
    struct MetricsMirror
    {
        Counter *memoryHits = nullptr;
        Counter *diskHits = nullptr;
        Counter *misses = nullptr;
        Counter *stores = nullptr;
        Counter *verifyFailures = nullptr;
        Counter *evictions = nullptr;
        Counter *lockContended = nullptr;
        Counter *neighborFetches = nullptr;
        Counter *revalidated = nullptr;
        Counter *gcRemoved = nullptr;
    };
    MetricsMirror metrics_;
    StoreStats mirrored_; ///< stats() as of the last mirror
    int collectorId_ = 0;

    // Background revalidation thread state.
    std::thread revalThread_;
    std::mutex revalMu_;
    std::condition_variable revalCv_;
    bool revalStop_ = false;
    bool revalRunning_ = false;
};

} // namespace tessel

#endif // TESSEL_STORE_STORE_H
