#include "store/fingerprint.h"

#include <algorithm>

namespace tessel {

namespace {

/** Domain separator so fingerprints can never collide with payload
 * checksums (which seed hashBytes with 0). */
constexpr uint64_t kFingerprintDomain = 0x5445535345'4c4650ull; // "TESSELFP"

/** Component-digest domains: each sub-fingerprint hashes the same
 * canonical field sequence as the full fingerprint but under its own
 * seed, so components can never alias each other or the full digest. */
constexpr uint64_t kPlacementDomain = 0x5445535345'4c5043ull; // "TESSELPC"
constexpr uint64_t kClusterDomain = 0x5445535345'4c434cull;   // "TESSELCL"
constexpr uint64_t kOptionsDomain = 0x5445535345'4c4f50ull;   // "TESSELOP"

/** Phase-completion digest domain (phaseOptionsDigest). */
constexpr uint64_t kPhaseDomain = 0x5445535345'4c5048ull; // "TESSELPH"

void
hashPlacement(Hasher &h, const Placement &p)
{
    // The display name is cosmetic — two structurally identical
    // placements are the same search input whatever they are called.
    h.addI32(p.numDevices());
    h.addI32(p.numBlocks());
    for (int i = 0; i < p.numBlocks(); ++i) {
        const BlockSpec &b = p.block(i);
        h.addI32(static_cast<int32_t>(b.kind));
        h.addI64(b.span);
        h.addI64(b.memory);
        h.addResourceSet(b.devices);
        h.addU64(b.deps.size());
        for (int dep : b.deps)
            h.addI32(dep);
    }
}

/** @return true when edge (producer, consumer) exists in @p p. */
bool
placementHasEdge(const Placement &p, int producer, int consumer)
{
    if (consumer < 0 || consumer >= p.numBlocks())
        return false;
    const std::vector<int> &deps = p.block(consumer).deps;
    return std::find(deps.begin(), deps.end(), producer) != deps.end();
}

void
hashCommModel(Hasher &h, const Placement &p, const TesselOptions &o)
{
    const int nd = p.numDevices();
    const ClusterModel &cluster = *o.cluster;

    // Speed factors: trailing 1.0 entries are invisible (speedOf
    // returns 1.0 past the vector).
    size_t speeds = cluster.speedFactor.size();
    while (speeds > 0 && cluster.speedFactor[speeds - 1] == 1.0)
        --speeds;
    h.addU64(speeds);
    for (size_t d = 0; d < speeds; ++d)
        h.addDouble(cluster.speedFactor[d]);

    h.addDouble(cluster.defaultLink.latency);
    h.addDouble(cluster.defaultLink.timePerMB);

    // Link overrides in map (= sorted key) order; entries equal to the
    // default link or naming a device the placement does not have are
    // no-ops for ClusterModel::link and are dropped.
    for (const auto &[pair, lp] : cluster.linkOverride) {
        if (pair.first < 0 || pair.second < 0 || pair.first >= nd ||
            pair.second >= nd) {
            continue;
        }
        if (lp.latency == cluster.defaultLink.latency &&
            lp.timePerMB == cluster.defaultLink.timePerMB) {
            continue;
        }
        h.addI32(pair.first);
        h.addI32(pair.second);
        h.addDouble(lp.latency);
        h.addDouble(lp.timePerMB);
    }
    h.addU64(0xfeedu); // Terminator: override list vs what follows.

    // Edge volumes in map order; a zero-MB entry equals a missing one
    // (both transfer latency only), and entries for edges the placement
    // does not contain are never read by expandWithComm.
    for (const auto &[edge, mb] : o.edgeMB) {
        if (mb == 0.0 || !placementHasEdge(p, edge.first, edge.second))
            continue;
        h.addI32(edge.first);
        h.addI32(edge.second);
        h.addDouble(mb);
    }
    h.addU64(0xfeedu);

    h.addI32(static_cast<int32_t>(o.comm.granularity));
}

void
hashOptions(Hasher &h, const TesselOptions &options)
{
    h.addI64(options.memLimit);
    // Trailing zero initial-memory entries equal an absent vector.
    size_t mems = options.initialMem.size();
    while (mems > 0 && options.initialMem[mems - 1] == 0)
        --mems;
    h.addU64(mems);
    for (size_t d = 0; d < mems; ++d)
        h.addI64(options.initialMem[d]);

    h.addI32(options.maxRepetendMicrobatches);
    h.addBool(options.lazy);
    h.addDouble(options.totalBudgetSec);
    h.addDouble(options.repetendBudgetSec);
    h.addDouble(options.phaseBudgetSec);
    // numThreads, cancel, the warm-start seed, and the MCR mode (both
    // inner solvers return bit-identical periods and starts) are
    // plan-invariant by the search's contracts and deliberately not
    // hashed.
}

/** The comm-aware predicate of core/search.cc. */
bool
queryIsCommAware(const Placement &placement, const TesselOptions &options)
{
    return options.cluster &&
           !options.cluster->isTrivial(placement.numDevices());
}

} // namespace

Hash128
fingerprintQuery(const Placement &placement, const TesselOptions &options)
{
    Hasher h(kFingerprintDomain);
    h.addU64(kFingerprintVersion);

    hashPlacement(h, placement);
    hashOptions(h, options);

    // The search goes comm-aware exactly when a non-trivial cluster is
    // present (core/search.cc); a null and a trivial model both take
    // the homogeneous path bit for bit, so they share a fingerprint and
    // the edge volumes / granularity are unread.
    const bool comm_aware = queryIsCommAware(placement, options);
    h.addBool(comm_aware);
    if (comm_aware)
        hashCommModel(h, placement, options);

    return h.digest();
}

SubFingerprints
subFingerprintsQuery(const Placement &placement,
                     const TesselOptions &options)
{
    SubFingerprints out;
    {
        Hasher h(kPlacementDomain);
        h.addU64(kFingerprintVersion);
        hashPlacement(h, placement);
        out.placement = h.digest();
    }
    {
        // Null and trivial models share the homogeneous sentinel digest
        // for the same reason they share a full fingerprint.
        Hasher h(kClusterDomain);
        h.addU64(kFingerprintVersion);
        const bool comm_aware = queryIsCommAware(placement, options);
        h.addBool(comm_aware);
        if (comm_aware)
            hashCommModel(h, placement, options);
        out.cluster = h.digest();
    }
    {
        Hasher h(kOptionsDomain);
        h.addU64(kFingerprintVersion);
        hashOptions(h, options);
        out.options = h.digest();
    }
    return out;
}

Hash128
phaseOptionsDigest(const TesselOptions &options)
{
    Hasher h(kPhaseDomain);
    h.addU64(kFingerprintVersion);

    // Budgets first: completeRepetendPlan runs each phase minimize
    // under phaseBudgetSec and the whole search under totalBudgetSec; a
    // truncated minimize returns its best-so-far, so either budget
    // moving can move the phase schedules.
    h.addDouble(options.totalBudgetSec);
    h.addDouble(options.phaseBudgetSec);

    // Memory shapes the phase instances themselves.
    h.addI64(options.memLimit);
    size_t mems = options.initialMem.size();
    while (mems > 0 && options.initialMem[mems - 1] == 0)
        --mems;
    h.addU64(mems);
    for (size_t d = 0; d < mems; ++d)
        h.addI64(options.initialMem[d]);

    // Lazy vs eager picks a different completion call site but the same
    // computation; hashed anyway — it is one bit and keeps the digest
    // conservative.
    h.addBool(options.lazy);

    return h.digest();
}

} // namespace tessel
