#include "store/adapt.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "core/repetend_solver.h"
#include "placement/comm.h"
#include "store/store.h"

namespace tessel {

namespace {

/** @return an AdaptOutcome that failed with @p reason. */
AdaptOutcome
fail(std::string reason)
{
    AdaptOutcome out;
    out.reason = std::move(reason);
    return out;
}

/**
 * Structural correspondence between the query's solve placement and the
 * neighbor plan's: same device count, same blocks up to costs. Spans and
 * memory deltas are the knobs adaptation absorbs; kinds, device masks,
 * and dependency edges define the search space itself and must match.
 */
bool
placementsCorrespond(const Placement &query, const Placement &stored)
{
    if (query.numDevices() != stored.numDevices() ||
        query.numBlocks() != stored.numBlocks()) {
        return false;
    }
    for (int i = 0; i < query.numBlocks(); ++i) {
        const BlockSpec &q = query.block(i);
        const BlockSpec &s = stored.block(i);
        if (q.kind != s.kind || !(q.devices == s.devices) ||
            q.deps != s.deps) {
            return false;
        }
    }
    return true;
}

/**
 * Whether @p assign is canonical for @p placement: every index in
 * [0, NR), min 0, max NR-1, and Property 4.2 (r_producer >= r_consumer
 * along every dependency edge). Exactly the invariants
 * enumerateRepetends guarantees, so an assignment passing this check is
 * one the sweep itself yields at that NR.
 */
bool
assignmentIsCanonical(const Placement &placement,
                      const RepetendAssignment &assign)
{
    const int nb = placement.numBlocks();
    const int nr = assign.numMicrobatches;
    if (nr < 1 || assign.r.size() != static_cast<size_t>(nb) || nb == 0)
        return false;
    int lo = std::numeric_limits<int>::max(), hi = -1;
    for (int r : assign.r) {
        if (r < 0 || r >= nr)
            return false;
        lo = std::min(lo, r);
        hi = std::max(hi, r);
    }
    if (lo != 0 || hi != nr - 1)
        return false;
    for (int j = 0; j < nb; ++j) {
        for (int i : placement.block(j).deps) {
            if (assign.r[i] < assign.r[j])
                return false;
        }
    }
    return true;
}

/** Wrap @p plan as a found TesselResult for the query's lowering. */
TesselResult
wrapResult(TesselPlan plan, const Placement &solve_placement, bool comm_aware,
           const std::optional<CommExpansion> &expansion)
{
    TesselResult result;
    result.found = true;
    result.period = plan.period();
    result.nrUsed = plan.minMicrobatches();
    result.lowerBound = solve_placement.perMicrobatchLowerBound();
    result.commAware = comm_aware;
    result.expansion = expansion;
    result.plan = std::move(plan);
    return result;
}

} // namespace

AdaptOutcome
adaptResultToQuery(const Placement &placement, const TesselOptions &options,
                   const TesselResult &neighbor, bool exactPhasesAllowed)
{
    if (!neighbor.found)
        return fail("neighbor result holds no plan");

    // Lower the query exactly as tesselSearch does, so correspondence is
    // judged against the placement the query would actually solve.
    const bool comm_aware =
        options.cluster &&
        !options.cluster->isTrivial(placement.numDevices());
    if (comm_aware != neighbor.commAware)
        return fail("comm-awareness mismatch");

    std::optional<CommExpansion> expansion;
    const Placement *solve_placement = &placement;
    TesselOptions eff = options;
    eff.seed = nullptr; // Adaptation must not recurse into seeding.
    if (comm_aware) {
        // Same caller-cache contract as tesselSearch: a provided
        // lowering equals what expandWithComm would build here.
        expansion = eff.lowered ? *eff.lowered
                                : expandWithComm(placement, *options.cluster,
                                                 options.edgeMB,
                                                 options.comm);
        solve_placement = &expansion->placement;
        if (!eff.initialMem.empty())
            eff.initialMem.resize(solve_placement->numDevices(), 0);
    }

    const TesselPlan &stored = neighbor.plan;
    if (!placementsCorrespond(*solve_placement, stored.placement()))
        return fail("placement structure differs");

    // Admissibility (seed witness guarantee): the assignment must be one
    // the query's own sweep enumerates — NR within the query's in-flight
    // cap and canonical on the placement enumeration runs on (the
    // original one; comm specs adopt their consumer's index and are
    // checked by re-extension).
    const RepetendAssignment &assign = stored.assignment();
    const int nr = assign.numMicrobatches;
    const int max_inflight =
        calMaxInflight(placement, options.memLimit, options.initialMem,
                       options.maxRepetendMicrobatches);
    if (nr < 1 || nr > max_inflight)
        return fail("repetend NR outside the query's in-flight cap");
    if (comm_aware) {
        if (assign.r.size() !=
            static_cast<size_t>(solve_placement->numBlocks())) {
            return fail("assignment width differs from solve placement");
        }
        RepetendAssignment orig;
        orig.numMicrobatches = nr;
        orig.r.assign(placement.numBlocks(), 0);
        for (size_t e = 0; e < expansion->origSpec.size(); ++e) {
            const int o = expansion->origSpec[e];
            if (o >= 0)
                orig.r[o] = assign.r[e];
        }
        if (!assignmentIsCanonical(placement, orig))
            return fail("assignment is not canonical for the query");
        if (expansion->extendAssignment(orig) != assign)
            return fail("assignment does not extend from the real blocks");
    } else {
        if (!assignmentIsCanonical(*solve_placement, assign))
            return fail("assignment is not canonical for the query");
    }

    // Fast path: keep the neighbor's entire timing, re-derive only the
    // period from the query's spans (evalPeriod is exact for a fixed
    // window), and let the oracle decide whether the timing survived the
    // cost change. Bit-for-bit reuse when only non-cost knobs moved.
    {
        const std::vector<Time> &start = stored.windowStart();
        if (start.size() ==
            static_cast<size_t>(solve_placement->numBlocks())) {
            const Time period =
                evalPeriod(*solve_placement, assign, start, true);
            Time span_lo = std::numeric_limits<Time>::max(), span_hi = 0;
            for (int i = 0; i < solve_placement->numBlocks(); ++i) {
                span_lo = std::min(span_lo, start[i]);
                span_hi = std::max(span_hi,
                                   start[i] + solve_placement->block(i).span);
            }
            if (period >= 1) {
                // Pad initialMem exactly as completeRepetendPlan does,
                // so a reused plan is byte-for-byte the one a cold
                // completion would construct.
                std::vector<Mem> initial_mem =
                    eff.initialMem.empty()
                        ? std::vector<Mem>(solve_placement->numDevices(), 0)
                        : eff.initialMem;
                TesselPlan plan(*solve_placement, assign, start, period,
                                span_hi - span_lo, stored.warmupRefs(),
                                stored.warmupStarts(), stored.cooldownRefs(),
                                stored.cooldownStarts(), eff.memLimit,
                                std::move(initial_mem));
                TesselResult candidate = wrapResult(
                    std::move(plan), *solve_placement, comm_aware, expansion);
                const VerifyOutcome verify =
                    verifyResultAgainstQuery(placement, options, candidate);
                if (verify.ok) {
                    AdaptOutcome out;
                    out.ok = true;
                    out.seed.period = candidate.period;
                    out.seed.windowStart = candidate.plan.windowStart();
                    out.seed.makespan = candidate.plan.makespanFor(nr + 1);
                    // Exact phase reuse: licensed by the caller's
                    // phase-options attestation AND a proof that the
                    // completion pipeline's inputs are identical — the
                    // stored solve placement matches the query's block
                    // for block (spans and memory deltas included; the
                    // oracle pass above only certifies feasibility, not
                    // input identity) and the memory model agrees. The
                    // neighbor's phases are then the very solves this
                    // query's completion would run, so the search may
                    // return them verbatim (core/search.cc
                    // completeOrReusePlan) when this seed's candidate
                    // wins.
                    if (exactPhasesAllowed &&
                        stored.placement().structurallyEquals(
                            *solve_placement) &&
                        stored.memLimit() == eff.memLimit &&
                        stored.initialMem() ==
                            candidate.plan.initialMem()) {
                        out.seed.phasesExact = true;
                        out.seed.plan = candidate.plan;
                    }
                    out.adapted = std::move(candidate);
                    return out;
                }
            }
        }
    }

    // Retime path: the assignment is known-good but the timing is not.
    // One exact candidate solve (window + phases) under the query's
    // costs — the sweep over all other candidates is what the seed
    // saves, not this.
    AdaptOutcome out;
    out.retimed = true;
    RepetendSolveOptions rso;
    rso.memLimit = eff.memLimit;
    rso.initialMem = eff.initialMem;
    rso.timeBudgetSec = eff.repetendBudgetSec;
    rso.mcr = eff.mcr;
    rso.cancel = eff.cancel;
    const RepetendSchedule sched =
        solveRepetend(*solve_placement, assign, rso);
    out.breakdown.candidatesSolved = 1;
    out.breakdown.solverNodes += sched.stats.nodes;
    out.breakdown.relaxations += sched.stats.relaxations;
    out.breakdown.valueSweeps += sched.stats.valueSweeps;
    out.breakdown.policyImprovements += sched.stats.policyImprovements;
    if (!sched.feasible) {
        out.reason = "repetend re-solve infeasible under the query";
        return out;
    }

    // A seed's phases only need to be *feasible* — the seed is a virtual
    // incumbent, never the returned plan — so don't pay the search's full
    // per-phase optimization budget here. If the clamped completion fails
    // we merely fall back cold, losing the seed, not correctness.
    TesselOptions adapt_opts = eff;
    adapt_opts.phaseBudgetSec = std::min(eff.phaseBudgetSec, 0.5);
    std::optional<TesselPlan> plan =
        completeRepetendPlan(*solve_placement, assign, sched, adapt_opts,
                             out.breakdown, eff.cancel);
    if (!plan) {
        out.reason = "phase completion failed under the query";
        return out;
    }

    TesselResult candidate =
        wrapResult(std::move(*plan), *solve_placement, comm_aware, expansion);
    const VerifyOutcome verify =
        verifyResultAgainstQuery(placement, options, candidate);
    if (!verify.ok) {
        out.reason = "adapted plan failed verification: " + verify.reason;
        return out;
    }

    out.ok = true;
    out.seed.period = candidate.period;
    out.seed.windowStart = candidate.plan.windowStart();
    out.seed.makespan = candidate.plan.makespanFor(nr + 1);
    out.adapted = std::move(candidate);
    return out;
}

} // namespace tessel
