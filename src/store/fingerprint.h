/**
 * @file
 * Canonical instance fingerprints: a stable 128-bit digest of the fully
 * lowered search input — the placement (blocks, spans, memory deltas,
 * device masks, dependency edges), the cluster model, the per-edge
 * communication volumes, and every TesselOptions field that can change
 * the resulting plan. The digest keys the plan store: two queries with
 * equal fingerprints are guaranteed to describe the same search, so a
 * cached TesselResult can answer either.
 *
 * Stability guarantee (recorded in README "Plan store & planning
 * service"): the fingerprint of a semantically identical query is
 * identical across processes, platforms, and input construction order.
 * Concretely, the digest is invariant to
 *
 *  - resource-set capacity history: device masks hash as their sorted
 *    set-bit indices, so a mask that grew past 64 bits and shrank back
 *    fingerprints like one that never grew;
 *  - container iteration order: link overrides and edge volumes live in
 *    std::map (sorted iteration) and are hashed in key order, so
 *    insertion order never matters;
 *  - no-op model entries: trailing unit speed factors, trailing zero
 *    initial-memory entries, zero-MB edge volumes, link overrides equal
 *    to the default link, link overrides naming out-of-range devices,
 *    and edge-volume entries for edges the placement does not have are
 *    all dropped before hashing (each is semantically invisible to the
 *    search);
 *  - the trivial-cluster identity: a null ClusterModel, and any model
 *    for which isTrivial(numDevices) holds, fingerprint identically
 *    (the search guarantees bit-identical plans for the two);
 *  - plan-invariant options: numThreads and the CancelToken are
 *    excluded (any thread count returns the same plan by construction),
 *    as is the placement's display name.
 *
 * Budget fields ARE hashed: a budget-limited search may return a
 * different (still valid) plan, so results found under one budget are
 * never served for another.
 */

#ifndef TESSEL_STORE_FINGERPRINT_H
#define TESSEL_STORE_FINGERPRINT_H

#include "core/search.h"
#include "ir/placement.h"
#include "support/hashing.h"

namespace tessel {

/**
 * Fingerprint format version. Bump whenever the hashed field set or
 * canonicalization rules change so stale store entries (keyed by file
 * name = fingerprint) can never alias a new-scheme query.
 */
constexpr uint32_t kFingerprintVersion = 1;

/** @return the canonical 128-bit fingerprint of (placement, options). */
Hash128 fingerprintQuery(const Placement &placement,
                         const TesselOptions &options);

/**
 * Per-component digests of a lowered instance, hashed with the same
 * canonicalization rules as the full fingerprint but under distinct
 * domain separators. Two instances agreeing on a component hash that
 * component identically; the neighbor index (store/neighbor.h) uses
 * agreement/disagreement per component to rank near-miss candidates
 * (e.g. "same placement, different cluster" adapts better than "same
 * cluster, different placement").
 */
struct SubFingerprints
{
    /** Placement structure + costs (display names excluded). */
    Hash128 placement;
    /** Cluster/comm model, canonicalized; fixed sentinel digest for
     * homogeneous instances (null or trivial model). */
    Hash128 cluster;
    /** Plan-relevant TesselOptions fields (budgets included). */
    Hash128 options;

    bool
    operator==(const SubFingerprints &other) const
    {
        return placement == other.placement && cluster == other.cluster &&
               options == other.options;
    }

    bool
    operator!=(const SubFingerprints &other) const
    {
        return !(*this == other);
    }
};

/** @return the component digests of (placement, options). */
SubFingerprints subFingerprintsQuery(const Placement &placement,
                                     const TesselOptions &options);

/**
 * Digest of every option that can influence the *phase completion*
 * output for a fixed phase instance: the phase and total budgets (a
 * truncated warmup/cooldown minimize returns its best-so-far, so the
 * budget is part of the answer), the memory limit / initial memory
 * (they shape the phase instance), and the lazy flag. Plan adaptation
 * (store/adapt.h) may mark a seed's phase schedules as exactly
 * reusable ONLY when the stored and querying instance agree on this
 * digest — otherwise the neighbor's completion could legitimately
 * differ from what the query's own cold search would compute.
 */
Hash128 phaseOptionsDigest(const TesselOptions &options);

} // namespace tessel

#endif // TESSEL_STORE_FINGERPRINT_H
