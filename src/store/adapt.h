/**
 * @file
 * Plan adaptation: turn a stored TesselResult for a *similar* instance
 * (a neighbor-index candidate, store/neighbor.h) into a verified plan
 * and warm-start seed for the instance actually being queried.
 *
 * The pipeline mirrors the search's own lowering, then proceeds in
 * strictly cheaper-first order:
 *
 *  1. Correspondence — the neighbor's solve placement must structurally
 *     match the query's (same devices, same block kinds/masks/edges);
 *     spans and memory deltas are allowed to differ, which is exactly
 *     the "one knob turned" near-miss the index targets. No
 *     correspondence → cold search, no seed.
 *  2. Admissibility — the neighbor's repetend assignment must be one
 *     the query's own sweep would enumerate (canonical form, Property
 *     4.2, NR within the query's CalMaxInflight). This is the seed
 *     witness guarantee: an admissible assignment means the cold sweep
 *     visits it too, so a seed derived from it can never hide a plan
 *     the cold search would have found.
 *  3. Fast path — reuse the neighbor's timing verbatim, re-deriving the
 *     period from the query's spans, and run the full store
 *     verification oracle. Identical-cost neighbors (e.g. same shape,
 *     different budget knob) adapt in microseconds.
 *  4. Retime path — when reused timing fails verification (spans
 *     actually moved), re-solve the repetend window and phases for the
 *     known-good assignment with the existing exact machinery. One
 *     candidate solve instead of a sweep over all of them.
 *
 * Every outcome that reports ok passed verifyResultAgainstQuery, so the
 * adapted plan is a *feasible* answer by itself; the search then only
 * uses it as a virtual incumbent (TesselOptions::seed), which preserves
 * bit-identical optima by the seed-only-prunes invariant.
 */

#ifndef TESSEL_STORE_ADAPT_H
#define TESSEL_STORE_ADAPT_H

#include <string>

#include "core/search.h"

namespace tessel {

/** Result of one neighbor-adaptation attempt. */
struct AdaptOutcome
{
    /** Whether an adapted, fully verified plan was produced. */
    bool ok = false;
    /** Why adaptation fell back cold (diagnostic; empty when ok). */
    std::string reason;
    /** Whether the retime path ran (false = verbatim timing reuse). */
    bool retimed = false;
    /** Whether the seed carries exactly-reusable phase schedules
     * (SearchSeed::phasesExact); fast path only, and only when the
     * caller attested phase-options agreement via exactPhasesAllowed. */
    bool phasesExact = false;
    /** Warm-start seed for the query's search; valid only when ok. */
    SearchSeed seed;
    /** The adapted result itself (found=true, verified against the
     * query); valid only when ok. */
    TesselResult adapted;
    /** Solver work spent adapting (retime path only). */
    SearchBreakdown breakdown;
};

/**
 * Adapt @p neighbor — a stored result for some other fingerprint — to
 * the query (@p placement, @p options). Never trusts the neighbor:
 * structural correspondence and assignment admissibility are checked
 * before any solve, and the adapted plan must pass the store's
 * verification oracle before ok is reported.
 *
 * @param exactPhasesAllowed caller's attestation that the stored and
 *   querying instances share a phaseOptionsDigest (the service compares
 *   the indexed meta sidecars). Only then may the fast path mark its
 *   seed phasesExact — and it still independently requires the stored
 *   solve placement to equal the query's span-for-span and the memory
 *   model to agree, so a stale or wrong attestation can widen reuse
 *   only to instances where the completion pipeline's inputs are
 *   provably identical anyway.
 */
AdaptOutcome adaptResultToQuery(const Placement &placement,
                                const TesselOptions &options,
                                const TesselResult &neighbor,
                                bool exactPhasesAllowed = false);

} // namespace tessel

#endif // TESSEL_STORE_ADAPT_H
