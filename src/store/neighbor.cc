#include "store/neighbor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "ir/cluster.h"
#include "support/io.h"

namespace tessel {

namespace {

/** Checksum domain for .meta sidecars (distinct from plan payloads). */
constexpr uint64_t kMetaChecksumDomain = 0x5445535345'4c4d43ull; // "TESSELMC"

/** Relative difference in [0, 1): |a-b| scaled by magnitude so a span
 * delta of 2 matters on a 10-unit block and vanishes on a 10k one. */
double
relDiff(double a, double b)
{
    return std::fabs(a - b) / (1.0 + std::fabs(a) + std::fabs(b));
}

} // namespace

InstanceMeta
computeInstanceMeta(const Placement &placement, const TesselOptions &options)
{
    InstanceMeta meta;
    meta.fingerprint = fingerprintQuery(placement, options);
    meta.sub = subFingerprintsQuery(placement, options);
    meta.phaseOptions = phaseOptionsDigest(options);

    std::array<double, kFeatureCount> &f = meta.features;
    const int nb = placement.numBlocks();
    f[kFeatDevices] = placement.numDevices();
    f[kFeatBlocks] = nb;
    f[kFeatTotalWork] = static_cast<double>(placement.totalWork());
    f[kFeatCriticalPath] = static_cast<double>(placement.criticalPath());
    f[kFeatNrCap] = options.maxRepetendMicrobatches;
    f[kFeatMemLimit] =
        std::min(static_cast<double>(options.memLimit), kMemLimitFeatureCap);

    // Stage count = distinct device masks; with the few masks real
    // pipelines have, the quadratic scan beats hashing resource sets.
    int stages = 0;
    for (int i = 0; i < nb; ++i) {
        bool seen = false;
        for (int j = 0; j < i && !seen; ++j)
            seen = placement.block(i).devices == placement.block(j).devices;
        if (!seen)
            ++stages;
    }
    f[kFeatStages] = stages;

    // Span histogram: fraction of blocks per log2 bucket. Fractions
    // (not counts) so "same shape, more micro-batches" stays close.
    if (nb > 0) {
        int hist[4] = {0, 0, 0, 0};
        for (int i = 0; i < nb; ++i) {
            const double span =
                std::max(1.0, static_cast<double>(placement.block(i).span));
            const int bucket = std::min(
                3, static_cast<int>(std::floor(std::log2(span))));
            ++hist[bucket];
        }
        for (int b = 0; b < 4; ++b)
            f[kFeatSpanHist0 + b] = static_cast<double>(hist[b]) / nb;
    }

    if (options.cluster) {
        const ClusterModel &cluster = *options.cluster;
        f[kFeatLinkLatency] = cluster.defaultLink.latency;
        f[kFeatLinkTimePerMB] = cluster.defaultLink.timePerMB;
        double sum = 0.0, worst = 1.0;
        const int nd = placement.numDevices();
        for (int d = 0; d < nd; ++d) {
            const double s = cluster.speedOf(d);
            sum += s;
            worst = std::max(worst, s);
        }
        f[kFeatMeanSpeed] = nd > 0 ? sum / nd : 1.0;
        f[kFeatMaxSpeed] = worst;
    } else {
        f[kFeatMeanSpeed] = 1.0;
        f[kFeatMaxSpeed] = 1.0;
    }

    double volume = 0.0;
    for (const auto &[edge, mb] : options.edgeMB) {
        (void)edge;
        volume += mb;
    }
    f[kFeatEdgeVolume] = volume;

    return meta;
}

std::string
serializeMeta(const InstanceMeta &meta)
{
    ByteWriter body;
    body.u64(meta.fingerprint.lo);
    body.u64(meta.fingerprint.hi);
    body.u64(meta.sub.placement.lo);
    body.u64(meta.sub.placement.hi);
    body.u64(meta.sub.cluster.lo);
    body.u64(meta.sub.cluster.hi);
    body.u64(meta.sub.options.lo);
    body.u64(meta.sub.options.hi);
    body.u64(meta.phaseOptions.lo);
    body.u64(meta.phaseOptions.hi);
    body.u32(static_cast<uint32_t>(kFeatureCount));
    for (double v : meta.features)
        body.f64(v);

    const Hash128 checksum = hashBytes(body.data(), kMetaChecksumDomain);

    ByteWriter out;
    out.raw(kMetaMagic, sizeof(kMetaMagic));
    out.u32(kMetaFormatVersion);
    out.u64(checksum.lo);
    out.u64(checksum.hi);
    out.raw(body.data().data(), body.size());
    return out.data();
}

bool
deserializeMeta(const std::string &bytes, InstanceMeta *meta)
{
    ByteReader r(bytes);
    char magic[sizeof(kMetaMagic)];
    if (!r.raw(magic, sizeof(magic)) ||
        std::memcmp(magic, kMetaMagic, sizeof(magic)) != 0) {
        return false;
    }
    uint32_t version = 0;
    if (!r.u32(&version) || version != kMetaFormatVersion)
        return false;
    Hash128 stored;
    if (!r.u64(&stored.lo) || !r.u64(&stored.hi))
        return false;

    const size_t body_off = bytes.size() - r.remaining();
    const Hash128 actual =
        hashBytes(bytes.substr(body_off), kMetaChecksumDomain);
    if (actual != stored)
        return false;

    InstanceMeta out;
    bool ok = r.u64(&out.fingerprint.lo) && r.u64(&out.fingerprint.hi) &&
              r.u64(&out.sub.placement.lo) && r.u64(&out.sub.placement.hi) &&
              r.u64(&out.sub.cluster.lo) && r.u64(&out.sub.cluster.hi) &&
              r.u64(&out.sub.options.lo) && r.u64(&out.sub.options.hi) &&
              r.u64(&out.phaseOptions.lo) && r.u64(&out.phaseOptions.hi);
    uint32_t nfeat = 0;
    ok = ok && r.u32(&nfeat) && nfeat == kFeatureCount;
    for (size_t i = 0; ok && i < kFeatureCount; ++i)
        ok = r.f64(&out.features[i]);
    if (!ok || !r.atEnd())
        return false;
    *meta = out;
    return true;
}

double
neighborDistance(const InstanceMeta &a, const InstanceMeta &b)
{
    double d = 0.0;
    for (size_t i = 0; i < kFeatureCount; ++i) {
        const double r = relDiff(a.features[i], b.features[i]);
        d += r * r;
    }
    // Component mismatches are graded by how hard they are to adapt
    // across: a different placement structure usually means no
    // correspondence at all, a different cluster model just rescales
    // spans, a different options digest is often one budget knob.
    if (a.sub.placement != b.sub.placement)
        d += 0.25;
    if (a.sub.cluster != b.sub.cluster)
        d += 1.0 / 16.0;
    if (a.sub.options != b.sub.options)
        d += 1.0 / 64.0;
    return d;
}

void
NeighborIndex::add(const InstanceMeta &meta)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(meta.fingerprint);
    if (it != index_.end()) {
        metas_[it->second] = meta;
        return;
    }
    index_.emplace(meta.fingerprint, metas_.size());
    metas_.push_back(meta);
}

bool
NeighborIndex::remove(const Hash128 &fp)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(fp);
    if (it == index_.end())
        return false;
    const size_t pos = it->second;
    const size_t last = metas_.size() - 1;
    if (pos != last) {
        metas_[pos] = metas_[last];
        index_[metas_[pos].fingerprint] = pos;
    }
    metas_.pop_back();
    index_.erase(it);
    return true;
}

bool
NeighborIndex::find(const Hash128 &fp, InstanceMeta *meta) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(fp);
    if (it == index_.end())
        return false;
    *meta = metas_[it->second];
    return true;
}

size_t
NeighborIndex::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return metas_.size();
}

std::vector<NeighborIndex::Neighbor>
NeighborIndex::nearest(const InstanceMeta &query, size_t k) const
{
    std::vector<Neighbor> out;
    if (k == 0)
        return out;
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(metas_.size());
    for (const InstanceMeta &meta : metas_) {
        if (meta.fingerprint == query.fingerprint)
            continue;
        out.push_back({meta.fingerprint, neighborDistance(query, meta)});
    }
    std::sort(out.begin(), out.end(),
              [](const Neighbor &x, const Neighbor &y) {
                  if (x.distance != y.distance)
                      return x.distance < y.distance;
                  return x.fingerprint < y.fingerprint;
              });
    if (out.size() > k)
        out.resize(k);
    return out;
}

} // namespace tessel
