/**
 * @file
 * Versioned binary serialization for TesselResult (plan, comm
 * expansion, and search breakdown included).
 *
 * Wire layout:
 *
 *   [0..7]   magic "TESSELPL"
 *   [8..11]  u32 format version (kPlanFormatVersion)
 *   [12..27] Hash128 instance fingerprint (lo, hi)
 *   [28..35] u64 payload byte count
 *   [..]     payload (fixed-width little-endian fields, see .cc)
 *   [..+7]   u64 payload checksum (Hash128.lo of hashBytes(payload))
 *
 * Guarantees:
 *  - Round-trip exactness: deserialize(serialize(r)) == r field for
 *    field, and re-serializing the loaded result reproduces the input
 *    bytes exactly (locked by tests/test_store.cc property tests).
 *  - Version policy: readers accept exactly kPlanFormatVersion; any
 *    other version is rejected with a descriptive error so a future
 *    format bump can never misparse old entries (the store then treats
 *    the entry as a miss and re-searches).
 *  - Corruption safety: every read is bounds-checked, sequence lengths
 *    are validated against the remaining bytes, the payload checksum is
 *    verified before structural decoding, and all Placement/TesselPlan
 *    invariants are re-checked *before* the validating constructors run
 *    (those call fatal()/panic() and must never see hostile data).
 *    Spans, periods, starts, and memory deltas are additionally capped
 *    in magnitude (2^38) and the plan's total block instances in count
 *    (2^24) so that downstream arithmetic on a decoded plan — window
 *    stride sums, peak-memory accumulation — provably stays inside
 *    int64 and verification cannot be tricked into gigantic
 *    allocations. A truncated, bit-flipped, or malformed buffer yields
 *    {ok=false, error}, never a crash.
 */

#ifndef TESSEL_STORE_SERIALIZE_H
#define TESSEL_STORE_SERIALIZE_H

#include <string>

#include "core/search.h"
#include "support/hashing.h"

namespace tessel {

/** On-disk plan format version; see the header comment for the policy. */
constexpr uint32_t kPlanFormatVersion = 1;

/** Magic prefix of every store entry. */
constexpr char kPlanMagic[8] = {'T', 'E', 'S', 'S', 'E', 'L', 'P', 'L'};

/** Byte offset of the u32 version field (corruption tests poke it). */
constexpr size_t kPlanVersionOffset = 8;

/** Serialize @p result (searched for @p fingerprint) to store bytes. */
std::string serializeResult(const TesselResult &result,
                            const Hash128 &fingerprint);

/** Outcome of deserializeResult. */
struct LoadedResult
{
    bool ok = false;
    std::string error;
    /** Fingerprint recorded in the entry header. */
    Hash128 fingerprint;
    TesselResult result;
};

/** Decode store bytes; never throws, panics, or reads out of bounds. */
LoadedResult deserializeResult(const std::string &bytes);

/**
 * Digest of the *plan-semantic* content of a result: the serialized
 * bytes with the SearchBreakdown zeroed, so wall-clock timings and
 * budget-dependent effort counters never perturb it. Two results with
 * equal digests carry bit-identical plans, periods, and expansions —
 * the certificate the service reports as `plan_hash` and the cold/warm
 * demonstrations diff across runs.
 */
Hash128 resultPlanDigest(const TesselResult &result);

} // namespace tessel

#endif // TESSEL_STORE_SERIALIZE_H
