#include "store/serialize.h"

#include <cstring>

#include "support/io.h"

namespace tessel {

namespace {

/**
 * Magnitude caps on deserialized quantities. The wire format could
 * carry any int64, but downstream arithmetic (tryInstantiate's
 * theta0/stride sums, the oracle's peak-memory accumulation) adds and
 * scales these values; capping magnitudes at 2^38 and the total block
 * instances at 2^24 keeps every such expression provably inside int64
 * (2^24 instances x 2^38 max |delta| < 2^63) and bounds the memory the
 * verification of a hostile entry can allocate. Real plans are orders
 * of magnitude below both limits (spans are milliseconds-scale
 * integers, NR <= maxRepetendMicrobatches).
 */
constexpr int64_t kMaxSerializedMagnitude = int64_t{1} << 38;
constexpr int64_t kMaxSerializedInstances = int64_t{1} << 24;

bool
magnitudeOk(int64_t v)
{
    return v >= -kMaxSerializedMagnitude && v <= kMaxSerializedMagnitude;
}

// ------------------------------------------------------------- writing

void
writeMask(ByteWriter &w, const DeviceMask &mask)
{
    // Canonical form: popcount + ascending set-bit indices. Capacity
    // history can never leak into the bytes, so serialization is as
    // capacity-invariant as the fingerprint.
    w.u32(static_cast<uint32_t>(mask.count()));
    for (int bit : mask)
        w.i32(bit);
}

void
writePlacement(ByteWriter &w, const Placement &p)
{
    w.str(p.name());
    w.i32(p.numDevices());
    w.u32(static_cast<uint32_t>(p.numBlocks()));
    for (int i = 0; i < p.numBlocks(); ++i) {
        const BlockSpec &b = p.block(i);
        w.str(b.name);
        w.u8(static_cast<uint8_t>(b.kind));
        writeMask(w, b.devices);
        w.i64(b.span);
        w.i64(b.memory);
        w.u32(static_cast<uint32_t>(b.deps.size()));
        for (int dep : b.deps)
            w.i32(dep);
    }
}

void
writeRefs(ByteWriter &w, const std::vector<BlockRef> &refs)
{
    w.u32(static_cast<uint32_t>(refs.size()));
    for (const BlockRef &r : refs) {
        w.i32(r.spec);
        w.i32(r.mb);
    }
}

void
writeTimes(ByteWriter &w, const std::vector<Time> &times)
{
    w.u32(static_cast<uint32_t>(times.size()));
    for (Time t : times)
        w.i64(t);
}

void
writePlan(ByteWriter &w, const TesselPlan &plan)
{
    writePlacement(w, plan.placement());
    const RepetendAssignment &a = plan.assignment();
    w.i32(a.numMicrobatches);
    w.u32(static_cast<uint32_t>(a.r.size()));
    for (int r : a.r)
        w.i32(r);
    writeTimes(w, plan.windowStart());
    w.i64(plan.period());
    w.i64(plan.windowSpan());
    writeRefs(w, plan.warmupRefs());
    writeTimes(w, plan.warmupStarts());
    writeRefs(w, plan.cooldownRefs());
    writeTimes(w, plan.cooldownStarts());
    w.i64(plan.memLimit());
    w.u32(static_cast<uint32_t>(plan.initialMem().size()));
    for (Mem m : plan.initialMem())
        w.i64(m);
}

void
writeExpansion(ByteWriter &w, const CommExpansion &e)
{
    writePlacement(w, e.placement);
    w.i32(e.numRealDevices);
    w.i32(e.numLinks);
    w.u32(static_cast<uint32_t>(e.origSpec.size()));
    for (int s : e.origSpec)
        w.i32(s);
    w.u32(static_cast<uint32_t>(e.indexSpec.size()));
    for (int s : e.indexSpec)
        w.i32(s);
    w.u32(static_cast<uint32_t>(e.linkEndpoints.size()));
    for (const auto &[a, b] : e.linkEndpoints) {
        w.i32(a);
        w.i32(b);
    }
}

void
writeBreakdown(ByteWriter &w, const SearchBreakdown &b)
{
    w.f64(b.repetendSeconds);
    w.f64(b.warmupSeconds);
    w.f64(b.cooldownSeconds);
    w.u64(b.candidatesEnumerated);
    w.u64(b.candidatesSolved);
    w.u64(b.candidatesCancelled);
    w.u64(b.satChecks);
    w.u64(b.solverNodes);
    w.u64(b.relaxations);
    w.u64(b.memoReused);
    w.i32(b.threadsUsed);
    w.boolean(b.earlyExit);
    w.boolean(b.budgetExhausted);
}

// ------------------------------------------------------------- reading
//
// Every reader either fills its output and returns true, or returns
// false with the ByteReader's failure flag latched / an error already
// composed by the caller. Placement and TesselPlan invariants are
// re-checked here because their constructors fatal()/panic() on
// violations — untrusted bytes must be fully vetted first.

bool
readMask(ByteReader &r, DeviceMask *out)
{
    uint32_t n;
    if (!r.count(&n, 4))
        return false;
    DeviceMask mask;
    int prev = -1;
    for (uint32_t i = 0; i < n; ++i) {
        int32_t bit;
        if (!r.i32(&bit))
            return false;
        // Canonical encoding is strictly ascending and non-negative.
        if (bit <= prev || bit < 0) {
            r.markFailed();
            return false;
        }
        mask.set(bit);
        prev = bit;
    }
    *out = std::move(mask);
    return true;
}

bool
readPlacement(ByteReader &r, Placement *out, std::string *err)
{
    std::string name;
    int32_t num_devices;
    uint32_t num_blocks;
    if (!r.str(&name) || !r.i32(&num_devices) || !r.count(&num_blocks, 25)) {
        *err = "placement header truncated";
        return false;
    }
    if (num_devices <= 0 || num_blocks == 0) {
        *err = "placement has no devices or no blocks";
        return false;
    }
    std::vector<BlockSpec> blocks;
    blocks.reserve(num_blocks);
    for (uint32_t i = 0; i < num_blocks; ++i) {
        BlockSpec b;
        uint8_t kind;
        uint32_t num_deps;
        if (!r.str(&b.name) || !r.u8(&kind) || !readMask(r, &b.devices) ||
            !r.i64(&b.span) || !r.i64(&b.memory) || !r.count(&num_deps, 4)) {
            *err = "placement block truncated";
            return false;
        }
        if (kind > static_cast<uint8_t>(BlockKind::Comm)) {
            *err = "placement block has invalid kind";
            return false;
        }
        b.kind = static_cast<BlockKind>(kind);
        if (b.devices.empty() || b.devices.anyAtOrAbove(num_devices)) {
            *err = "placement block has empty or out-of-range devices";
            return false;
        }
        if (b.span <= 0 || b.span > kMaxSerializedMagnitude ||
            !magnitudeOk(b.memory)) {
            *err = "placement block span/memory out of bounds";
            return false;
        }
        b.deps.reserve(num_deps);
        for (uint32_t d = 0; d < num_deps; ++d) {
            int32_t dep;
            if (!r.i32(&dep)) {
                *err = "placement deps truncated";
                return false;
            }
            if (dep < 0 || dep >= static_cast<int32_t>(num_blocks) ||
                dep == static_cast<int32_t>(i)) {
                *err = "placement dependency out of range";
                return false;
            }
            b.deps.push_back(dep);
        }
        blocks.push_back(std::move(b));
    }

    // Acyclicity (Kahn): Placement's constructor fatal()s on cycles, so
    // prove the DAG property before letting it run.
    std::vector<int> indeg(num_blocks, 0);
    std::vector<std::vector<int>> succs(num_blocks);
    for (uint32_t i = 0; i < num_blocks; ++i) {
        for (int dep : blocks[i].deps) {
            succs[dep].push_back(static_cast<int>(i));
            ++indeg[i];
        }
    }
    std::vector<int> ready;
    for (uint32_t i = 0; i < num_blocks; ++i)
        if (indeg[i] == 0)
            ready.push_back(static_cast<int>(i));
    uint32_t seen = 0;
    while (!ready.empty()) {
        const int i = ready.back();
        ready.pop_back();
        ++seen;
        for (int s : succs[i])
            if (--indeg[s] == 0)
                ready.push_back(s);
    }
    if (seen != num_blocks) {
        *err = "placement dependency graph has a cycle";
        return false;
    }

    *out = Placement(std::move(name), num_devices, std::move(blocks));
    return true;
}

bool
readRefs(ByteReader &r, std::vector<BlockRef> *out, int num_specs, int nr)
{
    uint32_t n;
    if (!r.count(&n, 8))
        return false;
    out->clear();
    out->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        BlockRef ref;
        if (!r.i32(&ref.spec) || !r.i32(&ref.mb))
            return false;
        if (ref.spec < 0 || ref.spec >= num_specs || ref.mb < 0 ||
            ref.mb >= nr) {
            r.markFailed();
            return false;
        }
        out->push_back(ref);
    }
    return true;
}

bool
readTimes(ByteReader &r, std::vector<Time> *out, bool non_negative)
{
    uint32_t n;
    if (!r.count(&n, 8))
        return false;
    out->clear();
    out->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
        Time t;
        if (!r.i64(&t))
            return false;
        if (non_negative && (t < 0 || t > kMaxSerializedMagnitude)) {
            r.markFailed();
            return false;
        }
        out->push_back(t);
    }
    return true;
}

bool
readPlan(ByteReader &r, TesselPlan *out, std::string *err)
{
    Placement placement;
    if (!readPlacement(r, &placement, err))
        return false;
    const int k = placement.numBlocks();

    RepetendAssignment assign;
    uint32_t num_r;
    if (!r.i32(&assign.numMicrobatches) || !r.count(&num_r, 4)) {
        *err = "plan assignment truncated";
        return false;
    }
    if (assign.numMicrobatches < 1 ||
        num_r != static_cast<uint32_t>(k)) {
        *err = "plan assignment malformed";
        return false;
    }
    // Verification instantiates NR + 1 micro-batches over k specs; cap
    // the instance count so a tiny hostile file cannot demand a
    // gigantic schedule allocation (a 6-block plan claiming NR = 2^30
    // would otherwise ask for 2^33 start slots).
    if (static_cast<int64_t>(k) * (assign.numMicrobatches + int64_t{1}) >
        kMaxSerializedInstances) {
        *err = "plan instance count out of bounds";
        return false;
    }
    assign.r.reserve(num_r);
    for (uint32_t i = 0; i < num_r; ++i) {
        int32_t ri;
        if (!r.i32(&ri)) {
            *err = "plan assignment truncated";
            return false;
        }
        if (ri < 0 || ri >= assign.numMicrobatches) {
            *err = "plan repetend index out of range";
            return false;
        }
        assign.r.push_back(ri);
    }

    std::vector<Time> window_start;
    Time period, window_span;
    if (!readTimes(r, &window_start, true) || !r.i64(&period) ||
        !r.i64(&window_span)) {
        *err = "plan window truncated";
        return false;
    }
    if (static_cast<int>(window_start.size()) != k || period < 0 ||
        period > kMaxSerializedMagnitude || window_span < 0 ||
        window_span > kMaxSerializedMagnitude) {
        *err = "plan window malformed";
        return false;
    }

    std::vector<BlockRef> warmup_refs, cooldown_refs;
    std::vector<Time> warmup_start, cooldown_start;
    if (!readRefs(r, &warmup_refs, k, assign.numMicrobatches) ||
        !readTimes(r, &warmup_start, true) ||
        !readRefs(r, &cooldown_refs, k, assign.numMicrobatches) ||
        !readTimes(r, &cooldown_start, true)) {
        *err = "plan phases truncated or out of range";
        return false;
    }
    if (warmup_refs.size() != warmup_start.size() ||
        cooldown_refs.size() != cooldown_start.size()) {
        *err = "plan phase sizes inconsistent";
        return false;
    }

    Mem mem_limit;
    uint32_t num_mem;
    if (!r.i64(&mem_limit) || !r.count(&num_mem, 8)) {
        *err = "plan memory truncated";
        return false;
    }
    std::vector<Mem> initial_mem;
    initial_mem.reserve(num_mem);
    for (uint32_t i = 0; i < num_mem; ++i) {
        Mem m;
        if (!r.i64(&m)) {
            *err = "plan memory truncated";
            return false;
        }
        // memLimit is only ever compared (kUnlimitedMem is legal), but
        // initial memory enters the peak-usage sums — cap it.
        if (!magnitudeOk(m)) {
            *err = "plan initial memory out of bounds";
            return false;
        }
        initial_mem.push_back(m);
    }

    // All TesselPlan constructor panic_ifs are now provably satisfied.
    *out = TesselPlan(std::move(placement), std::move(assign),
                      std::move(window_start), period, window_span,
                      std::move(warmup_refs), std::move(warmup_start),
                      std::move(cooldown_refs), std::move(cooldown_start),
                      mem_limit, std::move(initial_mem));
    return true;
}

bool
readExpansion(ByteReader &r, CommExpansion *out, std::string *err)
{
    CommExpansion e;
    if (!readPlacement(r, &e.placement, err))
        return false;
    if (!r.i32(&e.numRealDevices) || !r.i32(&e.numLinks)) {
        *err = "expansion header truncated";
        return false;
    }
    if (e.numRealDevices < 0 || e.numLinks < 0 ||
        e.numRealDevices + e.numLinks != e.placement.numDevices()) {
        *err = "expansion device split inconsistent";
        return false;
    }
    const int kb = e.placement.numBlocks();
    auto read_spec_vec = [&](std::vector<int> *vec, int min_value) {
        uint32_t n;
        if (!r.count(&n, 4) || n != static_cast<uint32_t>(kb))
            return false;
        vec->reserve(n);
        for (uint32_t i = 0; i < n; ++i) {
            int32_t v;
            if (!r.i32(&v) || v < min_value || v >= kb)
                return false;
            vec->push_back(v);
        }
        return true;
    };
    if (!read_spec_vec(&e.origSpec, -1) ||
        !read_spec_vec(&e.indexSpec, 0)) {
        *err = "expansion spec maps malformed";
        return false;
    }
    uint32_t num_links;
    if (!r.count(&num_links, 8) ||
        num_links != static_cast<uint32_t>(e.numLinks)) {
        *err = "expansion link list malformed";
        return false;
    }
    e.linkEndpoints.reserve(num_links);
    for (uint32_t i = 0; i < num_links; ++i) {
        int32_t a, b;
        if (!r.i32(&a) || !r.i32(&b) || a < 0 || b < a ||
            b >= e.numRealDevices) {
            *err = "expansion link endpoints malformed";
            return false;
        }
        e.linkEndpoints.emplace_back(a, b);
    }
    *out = std::move(e);
    return true;
}

bool
readBreakdown(ByteReader &r, SearchBreakdown *b)
{
    return r.f64(&b->repetendSeconds) && r.f64(&b->warmupSeconds) &&
           r.f64(&b->cooldownSeconds) && r.u64(&b->candidatesEnumerated) &&
           r.u64(&b->candidatesSolved) && r.u64(&b->candidatesCancelled) &&
           r.u64(&b->satChecks) && r.u64(&b->solverNodes) &&
           r.u64(&b->relaxations) && r.u64(&b->memoReused) &&
           r.i32(&b->threadsUsed) && r.boolean(&b->earlyExit) &&
           r.boolean(&b->budgetExhausted);
}

} // namespace

std::string
serializeResult(const TesselResult &result, const Hash128 &fingerprint)
{
    ByteWriter payload;
    payload.boolean(result.found);
    payload.boolean(result.commAware);
    payload.i64(result.period);
    payload.i64(result.lowerBound);
    payload.i32(result.nrUsed);
    writeBreakdown(payload, result.breakdown);

    const bool has_plan = result.plan.placement().numBlocks() > 0;
    payload.boolean(has_plan);
    if (has_plan)
        writePlan(payload, result.plan);

    payload.boolean(result.expansion.has_value());
    if (result.expansion)
        writeExpansion(payload, *result.expansion);

    ByteWriter out;
    out.raw(kPlanMagic, sizeof(kPlanMagic));
    out.u32(kPlanFormatVersion);
    out.u64(fingerprint.lo);
    out.u64(fingerprint.hi);
    out.u64(payload.size());
    out.raw(payload.data().data(), payload.size());
    out.u64(hashBytes(payload.data()).lo);
    return out.data();
}

Hash128
resultPlanDigest(const TesselResult &result)
{
    TesselResult canonical = result;
    canonical.breakdown = SearchBreakdown{};
    return hashBytes(serializeResult(canonical, Hash128{}));
}

LoadedResult
deserializeResult(const std::string &bytes)
{
    LoadedResult loaded;
    ByteReader r(bytes);

    char magic[sizeof(kPlanMagic)];
    if (!r.raw(magic, sizeof(magic)) ||
        std::memcmp(magic, kPlanMagic, sizeof(magic)) != 0) {
        loaded.error = "bad magic (not a Tessel plan file)";
        return loaded;
    }
    uint32_t version;
    if (!r.u32(&version)) {
        loaded.error = "header truncated";
        return loaded;
    }
    if (version != kPlanFormatVersion) {
        loaded.error = "unsupported plan format version " +
                       std::to_string(version) + " (expected " +
                       std::to_string(kPlanFormatVersion) + ")";
        return loaded;
    }
    uint64_t payload_len;
    if (!r.u64(&loaded.fingerprint.lo) || !r.u64(&loaded.fingerprint.hi) ||
        !r.u64(&payload_len)) {
        loaded.error = "header truncated";
        return loaded;
    }
    // Bound first: a hostile length near 2^64 must not reach the
    // pointer arithmetic below.
    if (payload_len > r.remaining() || payload_len + 8 != r.remaining()) {
        loaded.error = "payload length mismatch (truncated or padded file)";
        return loaded;
    }
    const size_t payload_off = bytes.size() - r.remaining();
    const std::string payload = bytes.substr(payload_off, payload_len);
    ByteReader tail(bytes.data() + payload_off + payload_len, 8);
    uint64_t checksum;
    tail.u64(&checksum);
    if (checksum != hashBytes(payload).lo) {
        loaded.error = "payload checksum mismatch (corrupted entry)";
        return loaded;
    }

    ByteReader p(payload);
    TesselResult &res = loaded.result;
    if (!p.boolean(&res.found) || !p.boolean(&res.commAware) ||
        !p.i64(&res.period) || !p.i64(&res.lowerBound) ||
        !p.i32(&res.nrUsed) || !readBreakdown(p, &res.breakdown)) {
        loaded.error = "result header malformed";
        return loaded;
    }

    bool has_plan;
    if (!p.boolean(&has_plan)) {
        loaded.error = "plan flag malformed";
        return loaded;
    }
    if (has_plan) {
        std::string err;
        if (!readPlan(p, &res.plan, &err)) {
            loaded.error = "plan malformed: " + err;
            return loaded;
        }
    }

    bool has_expansion;
    if (!p.boolean(&has_expansion)) {
        loaded.error = "expansion flag malformed";
        return loaded;
    }
    if (has_expansion) {
        std::string err;
        CommExpansion e;
        if (!readExpansion(p, &e, &err)) {
            loaded.error = "expansion malformed: " + err;
            return loaded;
        }
        res.expansion = std::move(e);
    }

    if (!p.atEnd()) {
        loaded.error = "trailing bytes after payload";
        return loaded;
    }
    loaded.ok = true;
    return loaded;
}

} // namespace tessel
