/**
 * @file
 * Communication lowering for heterogeneous clusters: rewrite a placement
 * so that every cross-device dependency edge with a nonzero transfer cost
 * becomes an explicit BlockKind::Comm block occupying a *link
 * pseudo-device* (a device bit >= the real device count, one per
 * unordered device pair actually used). Because comm blocks are ordinary
 * blocks on ordinary (pseudo-)devices, the repetend solver, the
 * branch-and-bound phase solver, memory pruning, and plan instantiation
 * all handle communication unchanged: link exclusivity is device
 * exclusivity, and comm-before-consume is a dependency edge.
 *
 * Block spans are simultaneously scaled by the slowest participating
 * device (ClusterModel::scaledSpan), so heterogeneity and communication
 * enter the search through one transformation.
 */

#ifndef TESSEL_PLACEMENT_COMM_H
#define TESSEL_PLACEMENT_COMM_H

#include <map>
#include <utility>
#include <vector>

#include "core/repetend.h"
#include "ir/cluster.h"
#include "ir/placement.h"
#include "ir/schedule.h"

namespace tessel {

/** Result of lowering a placement onto a non-trivial cluster model. */
struct CommExpansion
{
    /** Expanded placement: original specs (indices preserved, spans
     * scaled) followed by comm specs on link pseudo-devices. */
    Placement placement;
    /** Devices [0, numRealDevices) are physical; the rest are links. */
    int numRealDevices = 0;
    /** Number of link pseudo-devices appended after the real devices. */
    int numLinks = 0;
    /** Per expanded spec: originating spec, or -1 for comm blocks. */
    std::vector<int> origSpec;
    /** Per expanded spec: the spec whose repetend index it adopts (its
     * own for real blocks, the consumer's for comm blocks). */
    std::vector<int> indexSpec;
    /** Per link pseudo-device (offset by numRealDevices): its device
     * pair, normalized to (min, max). */
    std::vector<std::pair<DeviceId, DeviceId>> linkEndpoints;

    /** @return number of comm specs appended to the placement. */
    int
    numCommBlocks() const
    {
        return placement.numBlocks() - numOriginalBlocks();
    }

    /** @return number of original (non-comm) specs. */
    int
    numOriginalBlocks() const
    {
        int n = 0;
        for (int o : origSpec)
            if (o >= 0)
                ++n;
        return n;
    }

    /**
     * Extend a repetend assignment over the original placement to the
     * expanded one: real blocks keep their index, comm blocks adopt
     * their consumer's index (the transfer lands in the same window
     * position as its use). Preserves Property 4.2 along every expanded
     * edge.
     */
    RepetendAssignment extendAssignment(const RepetendAssignment &orig) const;

    /**
     * Project a schedule over the expanded placement back onto the
     * original one (drop comm blocks, keep start times). The result is
     * valid for the original problem whenever the expanded schedule was
     * valid: dropping blocks relaxes exclusivity, and the original
     * dependency edges are retained by the expansion.
     */
    Schedule projectSchedule(const Schedule &expanded) const;
};

/** Knobs controlling the comm lowering. */
struct CommOptions
{
    /**
     * Transfer granularity. PerDevice emits one comm block per
     * uncovered destination device, matching the runtime's per-device
     * send/recv pairs exactly. PerEdge emits a single comm block per
     * dependency edge, targeting the consumer's lead (lowest uncovered)
     * device — intra-group redistribution is treated as part of the
     * tensor-parallel block itself. PerEdge keeps the link count
     * proportional to the edge count; device masks are width-generic,
     * so this is a search-space/fidelity trade-off rather than a
     * representation limit.
     */
    enum class Granularity { PerDevice, PerEdge };
    Granularity granularity = Granularity::PerDevice;
};

/**
 * Lower @p placement onto @p cluster.
 *
 * For every dependency edge i -> j and every device of j that does not
 * already hold i's output (all of them under PerDevice granularity, the
 * lowest under PerEdge), a comm block is inserted on the link
 * pseudo-device of the pair (source, destination), where the source is
 * the lowest device of i (matching runtime instantiation). The comm
 * block depends on i, and j additionally depends on the comm block; the
 * direct edge i -> j is kept, so projecting back to the original
 * placement stays well-formed. Edges whose transfer cost is zero are
 * left untouched, which makes expansion with a trivial model the
 * identity on the dependency structure.
 *
 * @param placement the original (real-device) placement.
 * @param cluster speed factors and link parameters.
 * @param edge_mb activation volume (MB) per dependency edge (producer
 *        spec, consumer spec); missing edges transfer 0 MB and cost only
 *        the link latency.
 * @param options lowering knobs.
 */
CommExpansion expandWithComm(
    const Placement &placement, const ClusterModel &cluster,
    const std::map<std::pair<int, int>, double> &edge_mb,
    const CommOptions &options = {});

/**
 * Incremental re-lowering for elastic replanning: produce the expansion
 * of @p placement under the *drifted* @p cluster, reusing the structure
 * of @p previous (the expansion the served plan was solved on) instead
 * of rebuilding it — names, dependency wiring, link allocation, and
 * index maps are copied; only spans are recomputed (real blocks via
 * scaledSpan, comm blocks via the transfer dry run under the new
 * costs).
 *
 * Falls back to a full expandWithComm() whenever the patch cannot be
 * proven equivalent: the delta removes devices (the placement itself
 * changes), @p previous is not a well-formed expansion of this exact
 * placement, or the drift changed the *set* of comm blocks (a link
 * flipping between free and charged creates or destroys transfers,
 * which patching cannot express). Either way the returned expansion is
 * bit-identical to what expandWithComm(placement, cluster, ...) would
 * build — the fallback trivially, the patch because every field is
 * either copied from a validated previous expansion or recomputed with
 * the same formulas.
 *
 * @param patched optionally receives whether the cheap patch path was
 *        taken (false = full re-expansion).
 */
CommExpansion relowerWithComm(
    const Placement &placement, const ClusterModel &cluster,
    const std::map<std::pair<int, int>, double> &edge_mb,
    const CommOptions &options, const CommExpansion &previous,
    const ClusterDelta &delta, bool *patched = nullptr);

/**
 * Dry-run resource count: the total resources (real devices plus link
 * pseudo-devices) expandWithComm would allocate. Any count is
 * representable — ResourceSet grows past 64 bits transparently — so
 * this is sizing information (solver state scales with it), not a
 * feasibility check.
 */
int commResourceDemand(const Placement &placement,
                       const ClusterModel &cluster,
                       const std::map<std::pair<int, int>, double> &edge_mb,
                       const CommOptions &options = {});

/**
 * Per-edge volume map assigning @p mb MB to every dependency edge whose
 * producer and consumer device sets differ (convenience for tests and
 * the comm benches).
 */
std::map<std::pair<int, int>, double>
crossDeviceEdgeMB(const Placement &placement, double mb);

} // namespace tessel

#endif // TESSEL_PLACEMENT_COMM_H
