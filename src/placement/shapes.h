/**
 * @file
 * Canonical operator placement strategies from the paper (Fig. 1 and
 * Sec. VI-A): V-Shape (classic pipeline / 1F1B), X-Shape (Chimera's
 * bidirectional pipelines), M-Shape (memory-heavy embedding distributed
 * across all devices, used for GPT), NN-Shape (mT5's encoder-decoder with
 * a shared full-device embedding), and K-Shape (Flava's two independent
 * modality branches joined by a full-device cross encoder).
 */

#ifndef TESSEL_PLACEMENT_SHAPES_H
#define TESSEL_PLACEMENT_SHAPES_H

#include <map>

#include "ir/cluster.h"
#include "ir/placement.h"

namespace tessel {

/**
 * Span/memory parameters for shape construction.
 *
 * Defaults follow the paper's evaluation convention: integer costs with
 * backward twice the forward (Fig. 3/4) or three times with recompute
 * (Sec. VI-B), and unit memory deltas for the ablations (Fig. 12).
 */
struct ShapeCosts
{
    /** Span of a per-device pipeline-stage forward block. */
    Time fwdSpan = 1;
    /** Span of a per-device backward block. */
    Time bwdSpan = 2;
    /** Memory a forward block retains until its backward runs. */
    Mem fwdMem = 1;
    /** Memory released by a backward block. */
    Mem bwdMem = -1;
    /** Span of a tensor-parallel (all-device) forward block. */
    Time tpFwdSpan = 1;
    /** Span of a tensor-parallel backward block. */
    Time tpBwdSpan = 2;
    /** Per-device memory of a tensor-parallel forward block. */
    Mem tpFwdMem = 1;
    /** Per-device memory released by a tensor-parallel backward block. */
    Mem tpBwdMem = -1;

    /** @return costs with recompute enabled (backward = 3x forward). */
    static ShapeCosts
    withRecompute()
    {
        ShapeCosts c;
        c.bwdSpan = 3;
        c.tpBwdSpan = 3;
        return c;
    }
};

/**
 * V-Shape (Fig. 1a): stages placed sequentially across devices; the
 * placement underlying GPipe/1F1B.
 *
 * Blocks: f0..f{D-1} down the devices, then b{D-1}..b0 back up.
 */
Placement makeVShape(int num_devices, const ShapeCosts &costs = {});

/**
 * X-Shape (Fig. 1b): Chimera's bidirectional pipelines. One scheduling
 * unit carries two samples, one through each direction, so each device
 * hosts two stages (a down-pipeline stage and an up-pipeline stage).
 */
Placement makeXShape(int num_devices, const ShapeCosts &costs = {});

/**
 * M-Shape (Fig. 1c): the memory-intensive embedding is tensor-parallel
 * across all devices (entry and exit), with compute-heavy stages placed
 * sequentially in between. Used for GPT with large vocabularies.
 *
 * Blocks: embF(all) -> f0..f{D-1} -> headFB(all) -> b{D-1}..b0 ->
 * embB(all).
 */
Placement makeMShape(int num_devices, const ShapeCosts &costs = {});

/**
 * NN-Shape (Sec. VI-A, mT5): shared embedding tensor-parallel across all
 * devices; encoder stages then decoder stages each swept across the
 * devices (two diagonal strokes), with mirrored backward passes.
 */
Placement makeNnShape(int num_devices, const ShapeCosts &costs = {});

/**
 * K-Shape (Fig. 1d, Flava): two independent modality branches placed on
 * disjoint device halves, joined by a full-device tensor-parallel cross
 * encoder. Requires an even device count >= 2.
 */
Placement makeKShape(int num_devices, const ShapeCosts &costs = {});

/**
 * Derive the inference variant of a training placement by dropping all
 * backward blocks (Sec. VI-B observes inference schedules are training
 * schedules minus backward execution). Forward memory deltas are zeroed:
 * inference activations are transient.
 */
Placement forwardOnly(const Placement &placement);

/** Look up a shape builder by name ("V", "X", "M", "NN", "K"). */
Placement makeShapeByName(const std::string &name, int num_devices,
                          const ShapeCosts &costs = {});

/**
 * Knobs for the heterogeneous/comm variants of the canonical shapes.
 *
 * Defaults give a cluster where odd-indexed devices run 1.5x slower
 * than even-indexed ones and every link costs one time unit of latency
 * plus a finite bandwidth — small enough that unit-cost shapes stay
 * solvable, large enough that comm-oblivious plans are measurably
 * suboptimal.
 */
struct HeteroCosts
{
    /** Span multiplier of odd-indexed (slow) devices. */
    double slowFactor = 1.5;
    /** Fixed per-transfer link latency (time units). */
    double linkLatency = 1.0;
    /** Inverse link bandwidth (time units per MB). */
    double linkTimePerMB = 0.25;
    /** Activation volume (MB) carried by each cross-device edge. */
    double edgeMB = 4.0;
};

/**
 * A canonical shape bundled with a non-trivial cluster model and
 * per-edge communication volumes: the heterogeneous variant used by the
 * comm-aware search, the simulator cross-checks, and bench_fig17.
 */
struct HeteroShape
{
    Placement placement;
    ClusterModel cluster;
    /** Volume per cross-device dependency edge (producer, consumer). */
    std::map<std::pair<int, int>, double> edgeMB;
};

/**
 * Heterogeneous variant of makeShapeByName: same dependency DAG, plus a
 * cluster model with alternating fast/slow devices and uniform
 * latency/bandwidth links, plus uniform cross-device edge volumes.
 */
HeteroShape makeHeteroShapeByName(const std::string &name, int num_devices,
                                  const ShapeCosts &costs = {},
                                  const HeteroCosts &hetero = {});

/**
 * Survivor placement after a single device failure: the same canonical
 * shape rebuilt over the remaining devices.
 */
struct DegradedShape
{
    Placement placement;
    /** Devices of the *original* cluster that dropped out, sorted
     * ascending. One entry for most shapes; two for K-Shape, whose
     * balanced-halves structure forces the failed device's mirror
     * partner out too. */
    std::vector<DeviceId> removedDevices;
};

/**
 * Re-place @p name after device @p failed (of @p num_devices) drops
 * out. V/X/M/NN rebuild at num_devices - 1; K-Shape needs equal branch
 * halves, so the failed device's mirror partner (failed ± half) is
 * retired with it and the shape rebuilds at num_devices - 2. Fatal
 * when @p failed is out of range or too few devices survive (every
 * shape needs >= 2; K-Shape therefore needs >= 4 to survive).
 */
DegradedShape makeDegradedShape(const std::string &name, int num_devices,
                                DeviceId failed,
                                const ShapeCosts &costs = {});

/**
 * Heterogeneous survivor instance after device @p failed drops out:
 * the degraded placement plus the cluster the survivors *actually*
 * form — applyDelta removal over makeHeteroShapeByName's model, so the
 * surviving hardware pattern is preserved (losing device 1 of speeds
 * [1, 1.5, 1, 1.5] leaves [1, 1, 1.5], not the alternating pattern a
 * fresh 3-device hetero shape would fabricate). Edge volumes are
 * re-derived for the degraded placement. @p removed, when given,
 * receives the retired original-cluster devices (see DegradedShape).
 */
HeteroShape makeDegradedHeteroShapeByName(
    const std::string &name, int num_devices, DeviceId failed,
    const ShapeCosts &costs = {}, const HeteroCosts &hetero = {},
    std::vector<DeviceId> *removed = nullptr);

} // namespace tessel

#endif // TESSEL_PLACEMENT_SHAPES_H
