#include "placement/comm.h"

#include <set>
#include <string>

#include "support/logging.h"

namespace tessel {

RepetendAssignment
CommExpansion::extendAssignment(const RepetendAssignment &orig) const
{
    panic_if(static_cast<int>(orig.r.size()) != numOriginalBlocks(),
             "extendAssignment: assignment size mismatch");
    RepetendAssignment out;
    out.numMicrobatches = orig.numMicrobatches;
    out.r.resize(indexSpec.size());
    for (size_t i = 0; i < indexSpec.size(); ++i)
        out.r[i] = orig.r[indexSpec[i]];
    return out;
}

Schedule
CommExpansion::projectSchedule(const Schedule &expanded) const
{
    const Problem &exp_prob = expanded.problem();
    panic_if(exp_prob.placement().numBlocks() != placement.numBlocks(),
             "projectSchedule: schedule is not over the expanded placement");

    // Rebuild the original placement from the expansion's leading specs:
    // undo the span scaling is impossible here, so the projection keeps
    // the *scaled* spans — it answers "where does real work run", not
    // "what would the homogeneous plan be".
    std::vector<BlockSpec> specs;
    for (int i = 0; i < placement.numBlocks(); ++i) {
        if (origSpec[i] < 0)
            continue;
        BlockSpec b = placement.block(i);
        std::vector<int> deps;
        for (int dep : b.deps)
            if (origSpec[dep] >= 0)
                deps.push_back(origSpec[dep]);
        b.deps = std::move(deps);
        specs.push_back(std::move(b));
    }
    Placement orig(placement.name() + "-projected", numRealDevices,
                   std::move(specs));

    Problem prob(std::move(orig), exp_prob.numMicrobatches(),
                 exp_prob.memLimit());
    std::vector<Mem> init(exp_prob.initialMem().begin(),
                          exp_prob.initialMem().begin() + numRealDevices);
    prob.setInitialMem(std::move(init));

    Schedule out(prob);
    for (int i = 0; i < placement.numBlocks(); ++i) {
        if (origSpec[i] < 0)
            continue;
        for (int mb = 0; mb < exp_prob.numMicrobatches(); ++mb)
            out.setStart({origSpec[i], mb}, expanded.start({i, mb}));
    }
    return out;
}

namespace {

/**
 * Enumerate the transfers the lowering emits for @p placement:
 * fn(producer spec, consumer spec, src device, dst device, span) for
 * every cross-device dependency edge with a nonzero transfer cost.
 * Shared by expandWithComm and commResourceDemand so the dry run and
 * the expansion can never disagree.
 */
template <typename Fn>
void
forEachTransfer(const Placement &placement, const ClusterModel &cluster,
                const std::map<std::pair<int, int>, double> &edge_mb,
                const CommOptions &options, Fn &&fn)
{
    for (int j = 0; j < placement.numBlocks(); ++j) {
        const BlockSpec &consumer = placement.block(j);
        for (int i : consumer.deps) {
            const BlockSpec &producer = placement.block(i);
            const DeviceId src = lowestDevice(producer.devices);
            double mb = 0.0;
            if (auto it = edge_mb.find({i, j}); it != edge_mb.end())
                mb = it->second;
            for (DeviceId dst : consumer.devices) {
                if (producer.devices.test(dst))
                    continue; // Output already resident.
                const Time span = cluster.transferSpan(src, dst, mb);
                if (span > 0)
                    fn(i, j, src, dst, span);
                if (options.granularity ==
                    CommOptions::Granularity::PerEdge) {
                    break; // Lead destination only.
                }
            }
        }
    }
}

} // namespace

CommExpansion
expandWithComm(const Placement &placement, const ClusterModel &cluster,
               const std::map<std::pair<int, int>, double> &edge_mb,
               const CommOptions &options)
{
    const int k = placement.numBlocks();
    const int nd = placement.numDevices();

    CommExpansion exp;
    exp.numRealDevices = nd;

    // Original specs first, indices preserved, spans scaled by the
    // slowest participating device.
    std::vector<BlockSpec> specs;
    specs.reserve(k);
    for (int i = 0; i < k; ++i) {
        BlockSpec b = placement.block(i);
        b.span = cluster.scaledSpan(b.span, b.devices);
        specs.push_back(std::move(b));
        exp.origSpec.push_back(i);
        exp.indexSpec.push_back(i);
    }

    // Link pseudo-devices are allocated lazily for pairs that carry a
    // transfer with a nonzero cost. Device masks are width-generic
    // (support/resourceset.h), so any number of links past the real
    // device count is representable; PerEdge granularity remains as an
    // explicit option to bound the link count itself.
    std::map<std::pair<DeviceId, DeviceId>, DeviceId> link_of;
    auto link_device = [&](DeviceId a, DeviceId b) {
        const auto key =
            a < b ? std::make_pair(a, b) : std::make_pair(b, a);
        const auto next =
            static_cast<DeviceId>(nd + exp.linkEndpoints.size());
        auto [it, inserted] = link_of.try_emplace(key, next);
        if (inserted)
            exp.linkEndpoints.push_back(key);
        return it->second;
    };

    forEachTransfer(
        placement, cluster, edge_mb, options,
        [&](int i, int j, DeviceId src, DeviceId dst, Time span) {
            BlockSpec c;
            c.name = "c:" + placement.block(i).name + ">" +
                     placement.block(j).name + "@" + std::to_string(dst);
            c.kind = BlockKind::Comm;
            c.devices = oneDevice(link_device(src, dst));
            c.span = span;
            c.memory = 0;
            c.deps = {i};
            const int comm_spec = static_cast<int>(specs.size());
            specs.push_back(std::move(c));
            exp.origSpec.push_back(-1);
            exp.indexSpec.push_back(j);
            specs[j].deps.push_back(comm_spec);
        });

    exp.numLinks = static_cast<int>(exp.linkEndpoints.size());
    exp.placement = Placement(placement.name() + "+comm", nd + exp.numLinks,
                              std::move(specs));
    return exp;
}

int
commResourceDemand(const Placement &placement, const ClusterModel &cluster,
                   const std::map<std::pair<int, int>, double> &edge_mb,
                   const CommOptions &options)
{
    std::set<std::pair<DeviceId, DeviceId>> links;
    forEachTransfer(placement, cluster, edge_mb, options,
                    [&](int, int, DeviceId src, DeviceId dst, Time) {
                        links.insert(src < dst ? std::make_pair(src, dst)
                                               : std::make_pair(dst, src));
                    });
    return placement.numDevices() + static_cast<int>(links.size());
}

std::map<std::pair<int, int>, double>
crossDeviceEdgeMB(const Placement &placement, double mb)
{
    std::map<std::pair<int, int>, double> edges;
    for (int j = 0; j < placement.numBlocks(); ++j) {
        for (int i : placement.block(j).deps) {
            if (placement.block(i).devices != placement.block(j).devices)
                edges[{i, j}] = mb;
        }
    }
    return edges;
}

} // namespace tessel
