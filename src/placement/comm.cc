#include "placement/comm.h"

#include <set>
#include <string>

#include "support/logging.h"

namespace tessel {

RepetendAssignment
CommExpansion::extendAssignment(const RepetendAssignment &orig) const
{
    panic_if(static_cast<int>(orig.r.size()) != numOriginalBlocks(),
             "extendAssignment: assignment size mismatch");
    RepetendAssignment out;
    out.numMicrobatches = orig.numMicrobatches;
    out.r.resize(indexSpec.size());
    for (size_t i = 0; i < indexSpec.size(); ++i)
        out.r[i] = orig.r[indexSpec[i]];
    return out;
}

Schedule
CommExpansion::projectSchedule(const Schedule &expanded) const
{
    const Problem &exp_prob = expanded.problem();
    panic_if(exp_prob.placement().numBlocks() != placement.numBlocks(),
             "projectSchedule: schedule is not over the expanded placement");

    // Rebuild the original placement from the expansion's leading specs:
    // undo the span scaling is impossible here, so the projection keeps
    // the *scaled* spans — it answers "where does real work run", not
    // "what would the homogeneous plan be".
    std::vector<BlockSpec> specs;
    for (int i = 0; i < placement.numBlocks(); ++i) {
        if (origSpec[i] < 0)
            continue;
        BlockSpec b = placement.block(i);
        std::vector<int> deps;
        for (int dep : b.deps)
            if (origSpec[dep] >= 0)
                deps.push_back(origSpec[dep]);
        b.deps = std::move(deps);
        specs.push_back(std::move(b));
    }
    Placement orig(placement.name() + "-projected", numRealDevices,
                   std::move(specs));

    Problem prob(std::move(orig), exp_prob.numMicrobatches(),
                 exp_prob.memLimit());
    std::vector<Mem> init(exp_prob.initialMem().begin(),
                          exp_prob.initialMem().begin() + numRealDevices);
    prob.setInitialMem(std::move(init));

    Schedule out(prob);
    for (int i = 0; i < placement.numBlocks(); ++i) {
        if (origSpec[i] < 0)
            continue;
        for (int mb = 0; mb < exp_prob.numMicrobatches(); ++mb)
            out.setStart({origSpec[i], mb}, expanded.start({i, mb}));
    }
    return out;
}

namespace {

/**
 * Enumerate the transfers the lowering emits for @p placement:
 * fn(producer spec, consumer spec, src device, dst device, span) for
 * every cross-device dependency edge with a nonzero transfer cost.
 * Shared by expandWithComm and commResourceDemand so the dry run and
 * the expansion can never disagree.
 */
template <typename Fn>
void
forEachTransfer(const Placement &placement, const ClusterModel &cluster,
                const std::map<std::pair<int, int>, double> &edge_mb,
                const CommOptions &options, Fn &&fn)
{
    for (int j = 0; j < placement.numBlocks(); ++j) {
        const BlockSpec &consumer = placement.block(j);
        for (int i : consumer.deps) {
            const BlockSpec &producer = placement.block(i);
            const DeviceId src = lowestDevice(producer.devices);
            double mb = 0.0;
            if (auto it = edge_mb.find({i, j}); it != edge_mb.end())
                mb = it->second;
            for (DeviceId dst : consumer.devices) {
                if (producer.devices.test(dst))
                    continue; // Output already resident.
                const Time span = cluster.transferSpan(src, dst, mb);
                if (span > 0)
                    fn(i, j, src, dst, span);
                if (options.granularity ==
                    CommOptions::Granularity::PerEdge) {
                    break; // Lead destination only.
                }
            }
        }
    }
}

} // namespace

CommExpansion
expandWithComm(const Placement &placement, const ClusterModel &cluster,
               const std::map<std::pair<int, int>, double> &edge_mb,
               const CommOptions &options)
{
    const int k = placement.numBlocks();
    const int nd = placement.numDevices();

    CommExpansion exp;
    exp.numRealDevices = nd;

    // Original specs first, indices preserved, spans scaled by the
    // slowest participating device.
    std::vector<BlockSpec> specs;
    specs.reserve(k);
    for (int i = 0; i < k; ++i) {
        BlockSpec b = placement.block(i);
        b.span = cluster.scaledSpan(b.span, b.devices);
        specs.push_back(std::move(b));
        exp.origSpec.push_back(i);
        exp.indexSpec.push_back(i);
    }

    // Link pseudo-devices are allocated lazily for pairs that carry a
    // transfer with a nonzero cost. Device masks are width-generic
    // (support/resourceset.h), so any number of links past the real
    // device count is representable; PerEdge granularity remains as an
    // explicit option to bound the link count itself.
    std::map<std::pair<DeviceId, DeviceId>, DeviceId> link_of;
    auto link_device = [&](DeviceId a, DeviceId b) {
        const auto key =
            a < b ? std::make_pair(a, b) : std::make_pair(b, a);
        const auto next =
            static_cast<DeviceId>(nd + exp.linkEndpoints.size());
        auto [it, inserted] = link_of.try_emplace(key, next);
        if (inserted)
            exp.linkEndpoints.push_back(key);
        return it->second;
    };

    forEachTransfer(
        placement, cluster, edge_mb, options,
        [&](int i, int j, DeviceId src, DeviceId dst, Time span) {
            BlockSpec c;
            c.name = "c:" + placement.block(i).name + ">" +
                     placement.block(j).name + "@" + std::to_string(dst);
            c.kind = BlockKind::Comm;
            c.devices = oneDevice(link_device(src, dst));
            c.span = span;
            c.memory = 0;
            c.deps = {i};
            const int comm_spec = static_cast<int>(specs.size());
            specs.push_back(std::move(c));
            exp.origSpec.push_back(-1);
            exp.indexSpec.push_back(j);
            specs[j].deps.push_back(comm_spec);
        });

    exp.numLinks = static_cast<int>(exp.linkEndpoints.size());
    exp.placement = Placement(placement.name() + "+comm", nd + exp.numLinks,
                              std::move(specs));
    return exp;
}

CommExpansion
relowerWithComm(const Placement &placement, const ClusterModel &cluster,
                const std::map<std::pair<int, int>, double> &edge_mb,
                const CommOptions &options, const CommExpansion &previous,
                const ClusterDelta &delta, bool *patched)
{
    if (patched)
        *patched = false;
    auto full = [&] {
        return expandWithComm(placement, cluster, edge_mb, options);
    };
    if (delta.removesDevices())
        return full();

    const int k = placement.numBlocks();
    const int nd = placement.numDevices();

    // `previous` must be a well-formed expansion of this very placement:
    // real specs first (identity origSpec prefix), comm specs after
    // (origSpec -1), device/link counts consistent. Anything else is a
    // contract breach we answer with a fresh expansion, not a crash.
    const int prev_blocks = previous.placement.numBlocks();
    if (previous.numRealDevices != nd || prev_blocks < k ||
        previous.placement.numDevices() != nd + previous.numLinks ||
        static_cast<int>(previous.origSpec.size()) != prev_blocks ||
        static_cast<int>(previous.indexSpec.size()) != prev_blocks ||
        static_cast<int>(previous.linkEndpoints.size()) != previous.numLinks)
        return full();
    for (int i = 0; i < k; ++i)
        if (previous.origSpec[i] != i)
            return full();
    for (int e = k; e < prev_blocks; ++e)
        if (previous.origSpec[e] >= 0)
            return full();

    // Dry-run the transfer enumeration under the *drifted* cluster. The
    // patch is sound only if it emits exactly previous's comm-block
    // sequence — same (producer, consumer, destination) in the same
    // order, since expandWithComm appends comm specs in this order. A
    // drift that creates or destroys transfers changes the solve
    // placement's structure, which only a full re-expansion can build.
    struct Transfer
    {
        int i, j;
        DeviceId src, dst;
        Time span;
    };
    std::vector<Transfer> transfers;
    forEachTransfer(placement, cluster, edge_mb, options,
                    [&](int i, int j, DeviceId src, DeviceId dst,
                        Time span) {
                        transfers.push_back({i, j, src, dst, span});
                    });
    if (static_cast<int>(transfers.size()) != prev_blocks - k)
        return full();

    std::vector<BlockSpec> specs;
    specs.reserve(static_cast<size_t>(prev_blocks));
    for (int e = 0; e < prev_blocks; ++e)
        specs.push_back(previous.placement.block(e));

    // Real blocks: everything but the span must match the original
    // placement (previous's copies carry the comm deps expandWithComm
    // appended — those must point past the real prefix and follow the
    // original deps verbatim). Spans are recomputed for every block:
    // scaledSpan is cheap, and re-running the formula everywhere keeps
    // the patch correct even when the caller's delta understates the
    // drift.
    for (int i = 0; i < k; ++i) {
        const BlockSpec &ob = placement.block(i);
        BlockSpec &pb = specs[i];
        if (pb.name != ob.name || pb.kind != ob.kind ||
            !(pb.devices == ob.devices) || pb.memory != ob.memory ||
            pb.deps.size() < ob.deps.size())
            return full();
        for (size_t d = 0; d < ob.deps.size(); ++d)
            if (pb.deps[d] != ob.deps[d])
                return full();
        for (size_t d = ob.deps.size(); d < pb.deps.size(); ++d)
            if (pb.deps[d] < k)
                return full();
        pb.span = cluster.scaledSpan(ob.span, ob.devices);
    }

    // Comm blocks: endpoints, consumer, and producer must match the dry
    // run position for position; spans come from the drifted costs.
    for (size_t t = 0; t < transfers.size(); ++t) {
        const int e = k + static_cast<int>(t);
        const Transfer &tr = transfers[t];
        BlockSpec &cb = specs[e];
        if (cb.kind != BlockKind::Comm || previous.indexSpec[e] != tr.j ||
            cb.deps != std::vector<int>{tr.i})
            return full();
        const DeviceId link = lowestDevice(cb.devices);
        if (link < nd || link >= nd + previous.numLinks)
            return full();
        const auto want = tr.src < tr.dst
                              ? std::make_pair(tr.src, tr.dst)
                              : std::make_pair(tr.dst, tr.src);
        if (previous.linkEndpoints[link - nd] != want)
            return full();
        cb.span = tr.span;
    }

    CommExpansion out;
    out.numRealDevices = nd;
    out.numLinks = previous.numLinks;
    out.origSpec = previous.origSpec;
    out.indexSpec = previous.indexSpec;
    out.linkEndpoints = previous.linkEndpoints;
    out.placement = Placement(placement.name() + "+comm",
                              nd + out.numLinks, std::move(specs));
    if (patched)
        *patched = true;
    return out;
}

int
commResourceDemand(const Placement &placement, const ClusterModel &cluster,
                   const std::map<std::pair<int, int>, double> &edge_mb,
                   const CommOptions &options)
{
    std::set<std::pair<DeviceId, DeviceId>> links;
    forEachTransfer(placement, cluster, edge_mb, options,
                    [&](int, int, DeviceId src, DeviceId dst, Time) {
                        links.insert(src < dst ? std::make_pair(src, dst)
                                               : std::make_pair(dst, src));
                    });
    return placement.numDevices() + static_cast<int>(links.size());
}

std::map<std::pair<int, int>, double>
crossDeviceEdgeMB(const Placement &placement, double mb)
{
    std::map<std::pair<int, int>, double> edges;
    for (int j = 0; j < placement.numBlocks(); ++j) {
        for (int i : placement.block(j).deps) {
            if (placement.block(i).devices != placement.block(j).devices)
                edges[{i, j}] = mb;
        }
    }
    return edges;
}

} // namespace tessel
