#include "placement/piper.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.h"

namespace tessel {

namespace {

/** Effective speedup of spreading one stage over k devices. */
double
tpSpeedup(int k, double efficiency)
{
    // One efficiency factor per doubling (see CostModel::msFor).
    return k * std::pow(efficiency, std::log2(k));
}

} // namespace

PiperResult
piperPartition(const std::vector<LayerCost> &layers, int num_devices,
               double mem_capacity, double tp_efficiency, int max_tp)
{
    fatal_if(layers.empty(), "piper: no layers");
    fatal_if(num_devices <= 0, "piper: bad device count");
    if (max_tp <= 0)
        max_tp = num_devices;

    const int n = static_cast<int>(layers.size());
    constexpr double inf = std::numeric_limits<double>::infinity();

    // Prefix sums for O(1) stage cost queries.
    std::vector<double> time_pfx(n + 1, 0.0), mem_pfx(n + 1, 0.0);
    for (int i = 0; i < n; ++i) {
        time_pfx[i + 1] =
            time_pfx[i] + layers[i].fwdTime + layers[i].bwdTime;
        mem_pfx[i + 1] = mem_pfx[i] + layers[i].memory;
    }

    // dp[i][d]: minimal bottleneck covering layers [0, i) with d devices.
    std::vector<std::vector<double>> dp(
        n + 1, std::vector<double>(num_devices + 1, inf));
    // choice[i][d] = (start layer j, devices k) realizing dp[i][d].
    std::vector<std::vector<std::pair<int, int>>> choice(
        n + 1, std::vector<std::pair<int, int>>(num_devices + 1, {-1, -1}));
    dp[0][0] = 0.0;

    for (int i = 1; i <= n; ++i) {
        for (int d = 1; d <= num_devices; ++d) {
            for (int j = 0; j < i; ++j) {
                const double seg_time = time_pfx[i] - time_pfx[j];
                const double seg_mem = mem_pfx[i] - mem_pfx[j];
                for (int k = 1; k <= std::min(d, max_tp); ++k) {
                    if (dp[j][d - k] == inf)
                        continue;
                    if (seg_mem / k > mem_capacity)
                        continue;
                    const double stage_time =
                        seg_time / tpSpeedup(k, tp_efficiency);
                    const double bottleneck =
                        std::max(dp[j][d - k], stage_time);
                    if (bottleneck < dp[i][d]) {
                        dp[i][d] = bottleneck;
                        choice[i][d] = {j, k};
                    }
                }
            }
        }
    }

    PiperResult result;
    if (dp[n][num_devices] == inf)
        return result; // No feasible partition under the memory cap.
    result.feasible = true;
    result.bottleneckTime = dp[n][num_devices];

    // Reconstruct stages back-to-front.
    std::vector<PiperStage> rev;
    int i = n, d = num_devices;
    while (i > 0) {
        auto [j, k] = choice[i][d];
        panic_if(j < 0, "piper: broken reconstruction");
        PiperStage st;
        st.firstLayer = j;
        st.lastLayer = i - 1;
        st.numDevices = k;
        double fwd = 0.0, bwd = 0.0;
        for (int l = j; l < i; ++l) {
            fwd += layers[l].fwdTime;
            bwd += layers[l].bwdTime;
        }
        const double sp = tpSpeedup(k, tp_efficiency);
        st.fwdTime = fwd / sp;
        st.bwdTime = bwd / sp;
        st.memoryPerDevice = (mem_pfx[i] - mem_pfx[j]) / k;
        rev.push_back(st);
        i = j;
        d -= k;
    }
    result.stages.assign(rev.rbegin(), rev.rend());

    result.fastestTime = inf;
    for (const PiperStage &st : result.stages)
        result.fastestTime = std::min(result.fastestTime,
                                      st.fwdTime + st.bwdTime);
    return result;
}

Placement
piperToPlacement(const PiperResult &result, double time_scale,
                 Mem mem_units)
{
    fatal_if(!result.feasible, "piperToPlacement: infeasible partition");
    const int num_stages = static_cast<int>(result.stages.size());

    std::vector<BlockSpec> specs;
    auto span_of = [&](double t) {
        return std::max<Time>(1, static_cast<Time>(std::llround(
                                     t * time_scale)));
    };

    int dev_base = 0;
    std::vector<DeviceMask> masks(num_stages);
    for (int s = 0; s < num_stages; ++s) {
        DeviceMask mask;
        for (int k = 0; k < result.stages[s].numDevices; ++k)
            mask.set(dev_base + k);
        masks[s] = mask;
        dev_base += result.stages[s].numDevices;
    }

    std::vector<int> fwd(num_stages);
    for (int s = 0; s < num_stages; ++s) {
        BlockSpec b;
        b.name = "sF" + std::to_string(s);
        b.kind = BlockKind::Forward;
        b.devices = masks[s];
        b.span = span_of(result.stages[s].fwdTime);
        b.memory = mem_units;
        if (s > 0)
            b.deps.push_back(fwd[s - 1]);
        specs.push_back(std::move(b));
        fwd[s] = static_cast<int>(specs.size()) - 1;
    }
    int prev = fwd[num_stages - 1];
    for (int s = num_stages - 1; s >= 0; --s) {
        BlockSpec b;
        b.name = "sB" + std::to_string(s);
        b.kind = BlockKind::Backward;
        b.devices = masks[s];
        b.span = span_of(result.stages[s].bwdTime);
        b.memory = -mem_units;
        b.deps.push_back(prev);
        specs.push_back(std::move(b));
        prev = static_cast<int>(specs.size()) - 1;
    }
    return Placement("Piper-V", dev_base, std::move(specs));
}

} // namespace tessel
