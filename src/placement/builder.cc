#include "placement/builder.h"

#include "support/logging.h"

namespace tessel {

PlacementBuilder::BlockHandle &
PlacementBuilder::BlockHandle::on(DeviceId d)
{
    parent_.blocks_[index_].devices = oneDevice(d);
    return *this;
}

PlacementBuilder::BlockHandle &
PlacementBuilder::BlockHandle::onDevices(std::initializer_list<DeviceId> ds)
{
    DeviceMask mask;
    for (DeviceId d : ds)
        mask.set(d);
    parent_.blocks_[index_].devices = mask;
    return *this;
}

PlacementBuilder::BlockHandle &
PlacementBuilder::BlockHandle::onAll()
{
    parent_.blocks_[index_].devices = allDevices(parent_.numDevices_);
    return *this;
}

PlacementBuilder::BlockHandle &
PlacementBuilder::BlockHandle::span(Time t)
{
    parent_.blocks_[index_].span = t;
    return *this;
}

PlacementBuilder::BlockHandle &
PlacementBuilder::BlockHandle::mem(Mem m)
{
    parent_.blocks_[index_].memory = m;
    return *this;
}

PlacementBuilder::BlockHandle &
PlacementBuilder::BlockHandle::after(int block_index)
{
    fatal_if(block_index < 0 || block_index >= index_,
             "after(): dependency must reference an earlier block");
    parent_.blocks_[index_].deps.push_back(block_index);
    return *this;
}

int
PlacementBuilder::BlockHandle::done()
{
    return index_;
}

PlacementBuilder::PlacementBuilder(std::string name, int num_devices)
    : name_(std::move(name)), numDevices_(num_devices)
{
    fatal_if(num_devices <= 0, "PlacementBuilder: bad device count");
}

PlacementBuilder::BlockHandle
PlacementBuilder::begin(std::string name, BlockKind kind)
{
    BlockSpec b;
    b.name = std::move(name);
    b.kind = kind;
    blocks_.push_back(std::move(b));
    return BlockHandle(*this, static_cast<int>(blocks_.size()) - 1);
}

PlacementBuilder::BlockHandle
PlacementBuilder::forward(std::string name)
{
    return begin(std::move(name), BlockKind::Forward);
}

PlacementBuilder::BlockHandle
PlacementBuilder::backward(std::string name)
{
    return begin(std::move(name), BlockKind::Backward);
}

PlacementBuilder::BlockHandle
PlacementBuilder::other(std::string name)
{
    return begin(std::move(name), BlockKind::Other);
}

Placement
PlacementBuilder::build() const
{
    return Placement(name_, numDevices_, blocks_);
}

} // namespace tessel
