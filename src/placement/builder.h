/**
 * @file
 * Fluent public API for describing custom operator placement strategies,
 * the primary user-facing input to Tessel (see examples/custom_placement).
 */

#ifndef TESSEL_PLACEMENT_BUILDER_H
#define TESSEL_PLACEMENT_BUILDER_H

#include <initializer_list>
#include <string>
#include <vector>

#include "ir/placement.h"

namespace tessel {

/**
 * Incremental builder for Placement objects.
 *
 * Usage:
 * @code
 *   PlacementBuilder b("my-shape", 4);
 *   int f0 = b.forward("f0").on(0).span(2).mem(1).done();
 *   int f1 = b.forward("f1").on(1).span(2).mem(1).after(f0).done();
 *   ...
 *   Placement p = b.build();
 * @endcode
 */
class PlacementBuilder
{
  public:
    /** Handle used to finish describing one block. */
    class BlockHandle
    {
      public:
        /** Run on a single device. */
        BlockHandle &on(DeviceId d);
        /** Run tensor-parallel on an explicit device set. */
        BlockHandle &onDevices(std::initializer_list<DeviceId> ds);
        /** Run tensor-parallel on all devices. */
        BlockHandle &onAll();
        /** Execution time (default 1). */
        BlockHandle &span(Time t);
        /** Per-device memory delta (default 0). */
        BlockHandle &mem(Mem m);
        /** Add a dependency on a previously created block. */
        BlockHandle &after(int block_index);
        /** Finish and return this block's index. */
        int done();

      private:
        friend class PlacementBuilder;
        BlockHandle(PlacementBuilder &parent, int index)
            : parent_(parent), index_(index)
        {
        }
        PlacementBuilder &parent_;
        int index_;
    };

    /**
     * @param name placement name.
     * @param num_devices device count D.
     */
    PlacementBuilder(std::string name, int num_devices);

    /** Begin a forward block. */
    BlockHandle forward(std::string name);
    /** Begin a backward block. */
    BlockHandle backward(std::string name);
    /** Begin an 'other' block (e.g. optimizer step). */
    BlockHandle other(std::string name);

    /** Number of blocks added so far. */
    int size() const { return static_cast<int>(blocks_.size()); }

    /** Validate and construct the immutable Placement. */
    Placement build() const;

  private:
    BlockHandle begin(std::string name, BlockKind kind);

    std::string name_;
    int numDevices_;
    std::vector<BlockSpec> blocks_;
};

} // namespace tessel

#endif // TESSEL_PLACEMENT_BUILDER_H
