/**
 * @file
 * Piper-style stage partitioner (Tarnawski et al., NeurIPS'21), the
 * placement policy the paper's baselines use (Sec. II, Fig. 2; Sec. VI-A).
 *
 * Given a linear sequence of layers with per-layer time and memory costs,
 * Piper chooses contiguous stages and a device count per stage (tensor +
 * data parallelism inside a stage) to minimize the bottleneck stage time
 * under per-device memory capacity. For models with huge embedding
 * layers, memory forces the embedding onto several devices, starving the
 * compute-heavy transformer layers — the imbalance Fig. 2 demonstrates.
 */

#ifndef TESSEL_PLACEMENT_PIPER_H
#define TESSEL_PLACEMENT_PIPER_H

#include <string>
#include <vector>

#include "ir/placement.h"

namespace tessel {

/** Cost description of one model layer for the partitioner. */
struct LayerCost
{
    std::string name;
    /** Forward time on one device (arbitrary but consistent units). */
    double fwdTime = 0.0;
    /** Backward time on one device. */
    double bwdTime = 0.0;
    /** Total memory footprint (parameters + worst-case activations). */
    double memory = 0.0;
};

/** One stage chosen by the partitioner. */
struct PiperStage
{
    int firstLayer = 0; ///< inclusive
    int lastLayer = 0;  ///< inclusive
    int numDevices = 1; ///< devices assigned (tensor parallel within)
    double fwdTime = 0.0;
    double bwdTime = 0.0;
    double memoryPerDevice = 0.0;
};

/** Result of the stage partitioning. */
struct PiperResult
{
    bool feasible = false;
    std::vector<PiperStage> stages;
    /** Bottleneck per-micro-batch stage time (fwd+bwd). */
    double bottleneckTime = 0.0;
    /** Fastest stage time, for the imbalance ratio of Fig. 2. */
    double fastestTime = 0.0;
};

/**
 * Partition @p layers into at most @p num_devices contiguous stages using
 * exactly @p num_devices devices in total.
 *
 * Stage time scales as (fwd+bwd)/devices with a tensor-parallel
 * efficiency discount; stage memory divides evenly across its devices.
 *
 * @param layers the model's layer costs in order.
 * @param num_devices total devices available.
 * @param mem_capacity per-device memory capacity (same units as layers).
 * @param tp_efficiency multiplicative efficiency of splitting a stage
 *        across k devices (effective speedup = k * tp_efficiency^(k-1)).
 * @param max_tp cap on devices per stage (Piper co-tunes tensor/data
 *        parallelism per stage; deployments bound the tensor-parallel
 *        degree, which keeps the pipeline structure the paper's Fig. 2
 *        baseline exhibits). 0 means unbounded.
 */
PiperResult piperPartition(const std::vector<LayerCost> &layers,
                           int num_devices, double mem_capacity,
                           double tp_efficiency = 0.92, int max_tp = 0);

/**
 * Lower a Piper partition into a V-shape Placement whose stage spans are
 * the (integerized) per-stage times; stages with multiple devices become
 * tensor-parallel blocks over a contiguous device range.
 *
 * @param result a feasible partition.
 * @param time_scale multiply stage times by this before rounding to
 *        integer spans (pick so the smallest stage is a few units).
 * @param mem_units per-device integer memory charged per in-flight
 *        micro-batch of a stage (activation footprint).
 */
Placement piperToPlacement(const PiperResult &result, double time_scale,
                           Mem mem_units = 1);

} // namespace tessel

#endif // TESSEL_PLACEMENT_PIPER_H
