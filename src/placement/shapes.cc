#include "placement/shapes.h"

#include <algorithm>
#include <unordered_map>

#include "placement/comm.h"
#include "support/logging.h"

namespace tessel {

namespace {

/** Small helper collecting specs and returning their indices. */
class SpecList
{
  public:
    int
    add(std::string name, BlockKind kind, DeviceMask devices, Time span,
        Mem memory, std::vector<int> deps)
    {
        BlockSpec b;
        b.name = std::move(name);
        b.kind = kind;
        b.devices = devices;
        b.span = span;
        b.memory = memory;
        b.deps = std::move(deps);
        specs_.push_back(std::move(b));
        return static_cast<int>(specs_.size()) - 1;
    }

    std::vector<BlockSpec> take() { return std::move(specs_); }

  private:
    std::vector<BlockSpec> specs_;
};

} // namespace

Placement
makeVShape(int num_devices, const ShapeCosts &costs)
{
    fatal_if(num_devices < 2, "V-Shape needs >= 2 devices");
    SpecList s;
    std::vector<int> fwd(num_devices);
    for (int d = 0; d < num_devices; ++d) {
        std::vector<int> deps;
        if (d > 0)
            deps.push_back(fwd[d - 1]);
        fwd[d] = s.add("f" + std::to_string(d), BlockKind::Forward,
                       oneDevice(d), costs.fwdSpan, costs.fwdMem,
                       std::move(deps));
    }
    int prev = fwd[num_devices - 1];
    for (int d = num_devices - 1; d >= 0; --d) {
        prev = s.add("b" + std::to_string(d), BlockKind::Backward,
                     oneDevice(d), costs.bwdSpan, costs.bwdMem, {prev});
    }
    return Placement("V-Shape", num_devices, s.take());
}

Placement
makeXShape(int num_devices, const ShapeCosts &costs)
{
    fatal_if(num_devices < 2, "X-Shape needs >= 2 devices");
    SpecList s;
    // Down pipeline: stages 0..D-1 on devices 0..D-1.
    std::vector<int> down(num_devices);
    for (int d = 0; d < num_devices; ++d) {
        std::vector<int> deps;
        if (d > 0)
            deps.push_back(down[d - 1]);
        down[d] = s.add("dF" + std::to_string(d), BlockKind::Forward,
                        oneDevice(d), costs.fwdSpan, costs.fwdMem,
                        std::move(deps));
    }
    int prev = down[num_devices - 1];
    for (int d = num_devices - 1; d >= 0; --d) {
        prev = s.add("dB" + std::to_string(d), BlockKind::Backward,
                     oneDevice(d), costs.bwdSpan, costs.bwdMem, {prev});
    }
    // Up pipeline: stages 0..D-1 on devices D-1..0.
    std::vector<int> up(num_devices);
    for (int i = 0; i < num_devices; ++i) {
        const int d = num_devices - 1 - i;
        std::vector<int> deps;
        if (i > 0)
            deps.push_back(up[i - 1]);
        up[i] = s.add("uF" + std::to_string(i), BlockKind::Forward,
                      oneDevice(d), costs.fwdSpan, costs.fwdMem,
                      std::move(deps));
    }
    prev = up[num_devices - 1];
    for (int i = num_devices - 1; i >= 0; --i) {
        const int d = num_devices - 1 - i;
        prev = s.add("uB" + std::to_string(i), BlockKind::Backward,
                     oneDevice(d), costs.bwdSpan, costs.bwdMem, {prev});
    }
    return Placement("X-Shape", num_devices, s.take());
}

Placement
makeMShape(int num_devices, const ShapeCosts &costs)
{
    fatal_if(num_devices < 2, "M-Shape needs >= 2 devices");
    SpecList s;
    const DeviceMask all = allDevices(num_devices);
    const int emb_f = s.add("embF", BlockKind::Forward, all, costs.tpFwdSpan,
                            costs.tpFwdMem, {});
    std::vector<int> fwd(num_devices);
    for (int d = 0; d < num_devices; ++d) {
        std::vector<int> deps{d == 0 ? emb_f : fwd[d - 1]};
        fwd[d] = s.add("f" + std::to_string(d), BlockKind::Forward,
                       oneDevice(d), costs.fwdSpan, costs.fwdMem,
                       std::move(deps));
    }
    // Forward head + loss + backward head fused into one TP block; it
    // both allocates and releases, so its net memory is the forward TP
    // delta followed by the backward release.
    const int head = s.add("headFB", BlockKind::Forward, all,
                           costs.tpFwdSpan + costs.tpBwdSpan,
                           costs.tpFwdMem + costs.tpBwdMem,
                           {fwd[num_devices - 1]});
    int prev = head;
    for (int d = num_devices - 1; d >= 0; --d) {
        prev = s.add("b" + std::to_string(d), BlockKind::Backward,
                     oneDevice(d), costs.bwdSpan, costs.bwdMem, {prev});
    }
    s.add("embB", BlockKind::Backward, all, costs.tpBwdSpan, costs.tpBwdMem,
          {prev});
    return Placement("M-Shape", num_devices, s.take());
}

Placement
makeNnShape(int num_devices, const ShapeCosts &costs)
{
    fatal_if(num_devices < 2, "NN-Shape needs >= 2 devices");
    SpecList s;
    const DeviceMask all = allDevices(num_devices);
    const int emb_f = s.add("embF", BlockKind::Forward, all, costs.tpFwdSpan,
                            costs.tpFwdMem, {});
    // Encoder sweep.
    std::vector<int> enc(num_devices);
    for (int d = 0; d < num_devices; ++d) {
        std::vector<int> deps{d == 0 ? emb_f : enc[d - 1]};
        enc[d] = s.add("eF" + std::to_string(d), BlockKind::Forward,
                       oneDevice(d), costs.fwdSpan, costs.fwdMem,
                       std::move(deps));
    }
    // Decoder sweep; the first decoder stage consumes the encoder output
    // and the shared embedding.
    std::vector<int> dec(num_devices);
    for (int d = 0; d < num_devices; ++d) {
        std::vector<int> deps;
        if (d == 0)
            deps = {enc[num_devices - 1], emb_f};
        else
            deps = {dec[d - 1]};
        dec[d] = s.add("dF" + std::to_string(d), BlockKind::Forward,
                       oneDevice(d), costs.fwdSpan, costs.fwdMem,
                       std::move(deps));
    }
    // Decoder backward sweep.
    int prev = dec[num_devices - 1];
    std::vector<int> decb(num_devices);
    for (int d = num_devices - 1; d >= 0; --d) {
        prev = s.add("dB" + std::to_string(d), BlockKind::Backward,
                     oneDevice(d), costs.bwdSpan, costs.bwdMem, {prev});
        decb[d] = prev;
    }
    // Encoder backward sweep (gradients flow from the decoder's first
    // stage backward into the encoder's last stage).
    for (int d = num_devices - 1; d >= 0; --d) {
        std::vector<int> deps{d == num_devices - 1 ? decb[0] : prev};
        prev = s.add("eB" + std::to_string(d), BlockKind::Backward,
                     oneDevice(d), costs.bwdSpan, costs.bwdMem,
                     std::move(deps));
    }
    // Shared embedding gradient needs both sweeps complete.
    s.add("embB", BlockKind::Backward, all, costs.tpBwdSpan, costs.tpBwdMem,
          {prev, decb[0]});
    return Placement("NN-Shape", num_devices, s.take());
}

Placement
makeKShape(int num_devices, const ShapeCosts &costs)
{
    fatal_if(num_devices < 2 || num_devices % 2 != 0,
             "K-Shape needs an even device count >= 2");
    SpecList s;
    const int half = num_devices / 2;
    const DeviceMask all = allDevices(num_devices);

    // Text branch on devices [0, half), vision branch on [half, D).
    std::vector<int> text(half), vision(half);
    for (int i = 0; i < half; ++i) {
        std::vector<int> tdeps, vdeps;
        if (i > 0) {
            tdeps.push_back(text[i - 1]);
            vdeps.push_back(vision[i - 1]);
        }
        text[i] = s.add("tF" + std::to_string(i), BlockKind::Forward,
                        oneDevice(i), costs.fwdSpan, costs.fwdMem,
                        std::move(tdeps));
        vision[i] = s.add("vF" + std::to_string(i), BlockKind::Forward,
                          oneDevice(half + i), costs.fwdSpan, costs.fwdMem,
                          std::move(vdeps));
    }
    const int cross_f =
        s.add("xF", BlockKind::Forward, all, costs.tpFwdSpan, costs.tpFwdMem,
              {text[half - 1], vision[half - 1]});
    const int cross_b = s.add("xB", BlockKind::Backward, all,
                              costs.tpBwdSpan, costs.tpBwdMem, {cross_f});
    int tprev = cross_b, vprev = cross_b;
    for (int i = half - 1; i >= 0; --i) {
        tprev = s.add("tB" + std::to_string(i), BlockKind::Backward,
                      oneDevice(i), costs.bwdSpan, costs.bwdMem, {tprev});
        vprev = s.add("vB" + std::to_string(i), BlockKind::Backward,
                      oneDevice(half + i), costs.bwdSpan, costs.bwdMem,
                      {vprev});
    }
    return Placement("K-Shape", num_devices, s.take());
}

Placement
forwardOnly(const Placement &placement)
{
    std::vector<int> remap(placement.numBlocks(), -1);
    std::vector<BlockSpec> kept;
    for (int i = 0; i < placement.numBlocks(); ++i) {
        const BlockSpec &b = placement.block(i);
        if (b.kind == BlockKind::Backward)
            continue;
        remap[i] = static_cast<int>(kept.size());
        BlockSpec nb = b;
        nb.memory = 0; // Inference activations are transient.
        nb.deps.clear();
        for (int dep : b.deps) {
            fatal_if(remap[dep] < 0, "forwardOnly: forward block '", b.name,
                     "' depends on backward block '",
                     placement.block(dep).name, "'");
            nb.deps.push_back(remap[dep]);
        }
        kept.push_back(std::move(nb));
    }
    return Placement(placement.name() + "-infer", placement.numDevices(),
                     std::move(kept));
}

Placement
makeShapeByName(const std::string &name, int num_devices,
                const ShapeCosts &costs)
{
    if (name == "V" || name == "V-Shape")
        return makeVShape(num_devices, costs);
    if (name == "X" || name == "X-Shape")
        return makeXShape(num_devices, costs);
    if (name == "M" || name == "M-Shape")
        return makeMShape(num_devices, costs);
    if (name == "NN" || name == "NN-Shape")
        return makeNnShape(num_devices, costs);
    if (name == "K" || name == "K-Shape")
        return makeKShape(num_devices, costs);
    fatal("unknown shape name: ", name);
}

HeteroShape
makeHeteroShapeByName(const std::string &name, int num_devices,
                      const ShapeCosts &costs, const HeteroCosts &hetero)
{
    HeteroShape out;
    out.placement = makeShapeByName(name, num_devices, costs);
    out.cluster = ClusterModel::uniformLink(
        num_devices, LinkParams{hetero.linkLatency, hetero.linkTimePerMB});
    for (DeviceId d = 1; d < num_devices; d += 2)
        out.cluster.speedFactor[d] = hetero.slowFactor;
    out.edgeMB = crossDeviceEdgeMB(out.placement, hetero.edgeMB);
    return out;
}

DegradedShape
makeDegradedShape(const std::string &name, int num_devices, DeviceId failed,
                  const ShapeCosts &costs)
{
    fatal_if(failed < 0 || failed >= num_devices,
             "makeDegradedShape: failed device ", failed,
             " outside [0, ", num_devices, ")");
    DegradedShape out;
    out.removedDevices = {failed};
    if (name == "K" || name == "K-Shape") {
        // K-Shape's branches live on mirrored device halves; a failure
        // in one branch strands the partner device in the other, so
        // both retire and the shape rebuilds two devices smaller.
        fatal_if(num_devices < 4,
                 "makeDegradedShape: K-Shape needs >= 4 devices to "
                 "survive a failure");
        const int half = num_devices / 2;
        const DeviceId partner =
            failed < half ? failed + half : failed - half;
        out.removedDevices.push_back(partner);
        std::sort(out.removedDevices.begin(), out.removedDevices.end());
        out.placement = makeKShape(num_devices - 2, costs);
    } else {
        fatal_if(num_devices < 3, "makeDegradedShape: ", name,
                 " needs >= 3 devices to survive a failure");
        out.placement = makeShapeByName(name, num_devices - 1, costs);
    }
    return out;
}

HeteroShape
makeDegradedHeteroShapeByName(const std::string &name, int num_devices,
                              DeviceId failed, const ShapeCosts &costs,
                              const HeteroCosts &hetero,
                              std::vector<DeviceId> *removed)
{
    DegradedShape degraded =
        makeDegradedShape(name, num_devices, failed, costs);
    const HeteroShape base =
        makeHeteroShapeByName(name, num_devices, costs, hetero);
    ClusterDelta delta;
    delta.removedDevices = degraded.removedDevices;

    HeteroShape out;
    out.cluster = applyDelta(base.cluster, delta, num_devices);
    out.placement = std::move(degraded.placement);
    out.edgeMB = crossDeviceEdgeMB(out.placement, hetero.edgeMB);
    if (removed)
        *removed = std::move(degraded.removedDevices);
    return out;
}

} // namespace tessel
