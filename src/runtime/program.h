/**
 * @file
 * Executable per-device programs: the output of runtime instantiation
 * (Sec. IV-D). A schedule fixes only per-device execution order; the
 * instantiation inserts matched send/receive primitives in a globally
 * consistent order (deadlock freedom) and tags consumer blocks with the
 * tensors they must await (non-blocking communication).
 */

#ifndef TESSEL_RUNTIME_PROGRAM_H
#define TESSEL_RUNTIME_PROGRAM_H

#include <string>
#include <vector>

#include "ir/problem.h"

namespace tessel {

/** Instruction opcode. */
enum class OpKind {
    Compute, ///< execute one block
    Send,    ///< transmit a tensor to a peer device
    Recv,    ///< receive a tensor from a peer device
};

/** One instruction of a device program. */
struct Instruction
{
    OpKind kind = OpKind::Compute;

    // Compute fields.
    BlockRef block;           ///< (spec, mb) executed
    std::string name;         ///< block name for rendering
    Time spanMs = 0;          ///< execution time
    Mem memDeltaMB = 0;       ///< memory delta at start
    std::vector<int> waits;   ///< tensor ids to await before starting
    /** Planned dispatch time from the source schedule; honored by the
     * simulator when ClusterSpec::honorPlannedStarts is set. */
    Time notBefore = 0;

    // Communication fields.
    int tensor = -1;          ///< unique transfer id
    DeviceId peer = -1;       ///< other endpoint
    double sizeMB = 0.0;      ///< transfer volume
};

/** A complete multi-device program. */
struct Program
{
    int numDevices = 0;
    int numTensors = 0;
    /** code[d] is device d's instruction sequence. */
    std::vector<std::vector<Instruction>> code;

    /** Total compute instructions (sanity/metrics). */
    int
    numComputeOps() const
    {
        int n = 0;
        for (const auto &seq : code)
            for (const Instruction &op : seq)
                if (op.kind == OpKind::Compute)
                    ++n;
        return n;
    }
};

} // namespace tessel

#endif // TESSEL_RUNTIME_PROGRAM_H
