#include "runtime/codegen.h"

#include <sstream>

#include "support/logging.h"

namespace tessel {

std::string
emitDeviceCode(const Program &program, DeviceId device)
{
    panic_if(device < 0 || device >= program.numDevices,
             "emitDeviceCode: bad device ", device);
    std::ostringstream os;
    os << "# device " << device << " program (auto-generated)\n";
    os << "def run_device_" << device << "(blocks, comm, inputs):\n";
    if (program.code[device].empty()) {
        os << "    pass\n";
        return os.str();
    }
    for (const Instruction &op : program.code[device]) {
        switch (op.kind) {
          case OpKind::Compute:
            for (int tensor : op.waits)
                os << "    comm.wait(tensor_id=" << tensor << ")\n";
            os << "    out_" << op.name << "_mb" << op.block.mb
               << " = blocks['" << op.name << "'](mb=" << op.block.mb
               << ")  # " << op.spanMs << " ms\n";
            break;
          case OpKind::Send:
            os << "    comm.isend(tensor_id=" << op.tensor << ", dst="
               << op.peer << ", mb=" << op.block.mb << ")  # "
               << op.sizeMB << " MB, " << op.name << "\n";
            break;
          case OpKind::Recv:
            os << "    comm.irecv(tensor_id=" << op.tensor << ", src="
               << op.peer << ", mb=" << op.block.mb << ")  # "
               << op.sizeMB << " MB, " << op.name << "\n";
            break;
        }
    }
    return os.str();
}

std::string
emitAllDeviceCode(const Program &program)
{
    std::ostringstream os;
    for (DeviceId d = 0; d < program.numDevices; ++d)
        os << emitDeviceCode(program, d) << "\n";
    return os.str();
}

} // namespace tessel
