/**
 * @file
 * Runtime instantiation (Sec. IV-D): lower a validated schedule into
 * per-device programs. A topological sort over the schedule yields a
 * global sequence; each cross-device dependency inserts a send/receive
 * pair immediately after its producing block, so every device observes
 * communication pairs in one consistent global order — the paper's
 * deadlock-avoidance argument.
 */

#ifndef TESSEL_RUNTIME_INSTANTIATE_H
#define TESSEL_RUNTIME_INSTANTIATE_H

#include <map>

#include "ir/cluster.h"
#include "ir/schedule.h"
#include "runtime/program.h"

namespace tessel {

/**
 * Build the device programs for @p schedule.
 *
 * @param schedule a complete, valid schedule.
 * @param edge_mb activation volume (MB) per placement dependency edge
 *        (producer spec, consumer spec); missing edges default to 0 MB
 *        (still materialized as zero-byte transfers for ordering).
 * @param cluster optional heterogeneous cluster model: compute spans are
 *        scaled by the slowest participating device with exactly the
 *        planner's ClusterModel::scaledSpan, so a program lowered from
 *        an *unexpanded* schedule executes under the same per-device
 *        speeds the comm-aware search plans with. Schedules produced
 *        from a comm-expanded placement already carry scaled spans and
 *        must be instantiated without a model. nullptr = no scaling.
 */
Program instantiate(const Schedule &schedule,
                    const std::map<std::pair<int, int>, double> &edge_mb,
                    const ClusterModel *cluster = nullptr);

} // namespace tessel

#endif // TESSEL_RUNTIME_INSTANTIATE_H
