/**
 * @file
 * Pseudo-PyTorch code emission from instantiated programs, standing in
 * for the paper's TorchScript-based per-device code generation (Sec. V).
 * The emitted listing is what a device's training loop would execute:
 * block calls, asynchronous isend/irecv on the communication stream, and
 * tensor waits before dependent blocks.
 */

#ifndef TESSEL_RUNTIME_CODEGEN_H
#define TESSEL_RUNTIME_CODEGEN_H

#include <string>

#include "runtime/program.h"

namespace tessel {

/** Emit the pseudo-code listing of one device's program. */
std::string emitDeviceCode(const Program &program, DeviceId device);

/** Emit all device programs, separated by headers. */
std::string emitAllDeviceCode(const Program &program);

} // namespace tessel

#endif // TESSEL_RUNTIME_CODEGEN_H
