#include "runtime/instantiate.h"

#include <algorithm>

#include "support/logging.h"

namespace tessel {

Program
instantiate(const Schedule &schedule,
            const std::map<std::pair<int, int>, double> &edge_mb,
            const ClusterModel *cluster)
{
    const Problem &problem = schedule.problem();
    const Placement &p = problem.placement();

    Program prog;
    prog.numDevices = problem.numDevices();
    prog.code.resize(prog.numDevices);

    // Tensors awaiting each consumer instance, filled as producers emit.
    std::map<std::pair<int, DeviceId>, std::vector<int>> pending_waits;

    // Consumers of each spec, to emit sends right after the producer.
    std::vector<std::vector<int>> consumers(p.numBlocks());
    for (int spec = 0; spec < p.numBlocks(); ++spec)
        for (int dep : p.block(spec).deps)
            consumers[dep].push_back(spec);

    int next_tensor = 0;
    for (int id : schedule.globalOrder()) {
        const BlockRef ref = problem.refOf(id);
        const BlockSpec &spec = p.block(ref.spec);

        // Emit the compute on every device of the block.
        for (DeviceId d : spec.devices) {
            Instruction op;
            op.kind = OpKind::Compute;
            op.block = ref;
            op.name = spec.name;
            op.spanMs = cluster
                            ? cluster->scaledSpan(spec.span, spec.devices)
                            : spec.span;
            op.memDeltaMB = spec.memory;
            op.notBefore = schedule.start(ref);
            auto it = pending_waits.find({id, d});
            if (it != pending_waits.end())
                op.waits = it->second;
            prog.code[d].push_back(std::move(op));
        }

        // Emit send/recv pairs for cross-device consumers, immediately
        // after the producing block (global-order consistency).
        const DeviceId src = lowestDevice(spec.devices);
        for (int consumer : consumers[ref.spec]) {
            const BlockSpec &cspec = p.block(consumer);
            const int cid = problem.instanceId({consumer, ref.mb});
            double mb = 0.0;
            if (auto it = edge_mb.find({ref.spec, consumer});
                it != edge_mb.end()) {
                mb = it->second;
            }
            for (DeviceId dst : cspec.devices) {
                if (spec.devices.test(dst))
                    continue; // Producer output already resident.
                const int tensor = next_tensor++;

                Instruction send;
                send.kind = OpKind::Send;
                send.block = ref;
                send.name = spec.name + "->" + cspec.name;
                send.tensor = tensor;
                send.peer = dst;
                send.sizeMB = mb;
                prog.code[src].push_back(std::move(send));

                Instruction recv;
                recv.kind = OpKind::Recv;
                recv.block = ref;
                recv.name = spec.name + "->" + cspec.name;
                recv.tensor = tensor;
                recv.peer = src;
                recv.sizeMB = mb;
                prog.code[dst].push_back(std::move(recv));

                pending_waits[{cid, dst}].push_back(tensor);
            }
        }
    }
    prog.numTensors = next_tensor;
    return prog;
}

} // namespace tessel
