/**
 * @file
 * Planning-service front-end: answer a batch of schedule-search queries
 * (the five reference shapes x homogeneous/memory-capped/heterogeneous
 * option sweeps) through the plan store, reporting per-query source
 * (memory / disk / fresh search), batch throughput, and cache hit rate.
 *
 * Typical uses:
 *
 *   # Cold run: searches everything, populates the cache directory.
 *   tessel_service --cache-dir /tmp/plans --json stats1.json
 *
 *   # Warm run (same dir, new process): ~100% disk hits, bit-identical
 *   # plans; nonzero exit if the hit rate disappoints.
 *   tessel_service --cache-dir /tmp/plans --json stats2.json \
 *       --min-hit-rate 0.99
 *
 *   # Self-contained cold/warm/corruption demonstration (CI smoke).
 *   tessel_service --selftest
 *
 *   # Daemon mode: stream line-delimited JSON queries on stdin, one
 *   # JSON response per line on stdout (order may differ from input;
 *   # match on "id"). --emit-trace prints the reference batch in the
 *   # trace format, so the two compose into an end-to-end smoke:
 *   tessel_service --emit-trace | \
 *       tessel_service --serve --cache-dir /tmp/plans
 *
 * The stats JSON carries one object per query with its canonical
 * fingerprint and the digest of the serialized result (`plan_hash`);
 * equal plan hashes across runs certify bit-identical plans.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"
#include "service/trace.h"
#include "store/serialize.h"
#include "support/io.h"
#include "support/metrics.h"
#include "support/table.h"
#include "support/tracing.h"

using namespace tessel;

namespace {

struct Args
{
    std::string cacheDir = "tessel-plan-cache";
    std::string jsonPath;
    int devices = 4;
    int threads = 0;
    double budgetSec = 10.0;
    bool hetero = true;
    double minHitRate = -1.0;
    bool selftest = false;
    bool neighborSeed = true;
    bool serve = false;
    bool emitTrace = false;
    bool chaos = false;
    size_t queueDepth = 64;
    int workers = 2;
    double tenantRate = 0.0;
    double tenantBurst = 8.0;
    double revalidateSec = 0.0;
    double replanBudgetSec = 1.0;
    std::string metricsOut;
    std::string traceOut;
    double metricsIntervalSec = 1.0;
};

void
usage()
{
    std::cout
        << "usage: tessel_service [options]\n"
           "  --cache-dir DIR    plan cache directory "
           "(default: tessel-plan-cache)\n"
           "  --devices N        devices per reference shape (default 4)\n"
           "  --threads N        miss fan-out workers (0 = hardware)\n"
           "  --budget-sec S     per-query search budget (default 10)\n"
           "  --no-hetero        skip the heterogeneous comm-aware "
           "variants\n"
           "  --json PATH        write batch stats as JSON\n"
           "  --min-hit-rate F   exit 1 unless batch hit rate >= F\n"
           "  --neighbor-seed on|off\n"
           "                     warm-start store misses from adapted "
           "neighbor plans (default on)\n"
           "  --selftest         cold/warm/corruption demonstration in a "
           "temp dir\n"
           "  --serve            daemon mode: line-delimited JSON queries "
           "on stdin,\n"
           "                     one JSON response per line on stdout\n"
           "  --emit-trace       print the reference batch in the daemon "
           "trace format\n"
           "  --chaos            with --emit-trace: overlay drift/failure "
           "knobs on each line\n"
           "  --replan-budget-sec S\n"
           "                     --serve replan wait budget; a replan "
           "missing it serves the\n"
           "                     old plan retimed (stale) while the full "
           "search finishes in\n"
           "                     the background (<= 0 always waits; "
           "default 1)\n"
           "  --queue-depth N    --serve admission queue capacity "
           "(default 64)\n"
           "  --workers N        --serve dispatch workers (default 2)\n"
           "  --tenant-rate F    per-tenant sustained queries/sec "
           "(0 = unlimited)\n"
           "  --tenant-burst F   per-tenant token-bucket burst "
           "(default 8)\n"
           "  --revalidate-sec S background store revalidation interval "
           "(0 = off)\n"
           "  --metrics-out FILE periodic + final metrics snapshot: "
           "Prometheus text at\n"
           "                     FILE, JSON at FILE.json; the last "
           "periodic snapshot is\n"
           "                     kept as FILE.prev\n"
           "  --metrics-interval-sec S\n"
           "                     periodic snapshot interval (default 1)\n"
           "  --trace-out FILE   record spans; write Chrome trace-event "
           "JSON (Perfetto-\n"
           "                     loadable) at exit\n";
}

bool
parseArgs(int argc, char **argv, Args *args)
{
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "tessel_service: " << what
                          << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (a == "--cache-dir") {
            const char *v = next("--cache-dir");
            if (!v)
                return false;
            args->cacheDir = v;
        } else if (a == "--devices") {
            const char *v = next("--devices");
            if (!v)
                return false;
            args->devices = std::atoi(v);
        } else if (a == "--threads") {
            const char *v = next("--threads");
            if (!v)
                return false;
            args->threads = std::atoi(v);
        } else if (a == "--budget-sec") {
            const char *v = next("--budget-sec");
            if (!v)
                return false;
            args->budgetSec = std::atof(v);
        } else if (a == "--no-hetero") {
            args->hetero = false;
        } else if (a == "--json") {
            const char *v = next("--json");
            if (!v)
                return false;
            args->jsonPath = v;
        } else if (a == "--min-hit-rate") {
            const char *v = next("--min-hit-rate");
            if (!v)
                return false;
            args->minHitRate = std::atof(v);
        } else if (a == "--neighbor-seed") {
            const char *v = next("--neighbor-seed");
            if (!v)
                return false;
            const std::string mode = v;
            if (mode != "on" && mode != "off") {
                std::cerr << "tessel_service: --neighbor-seed takes "
                             "'on' or 'off'\n";
                return false;
            }
            args->neighborSeed = mode == "on";
        } else if (a == "--selftest") {
            args->selftest = true;
        } else if (a == "--serve") {
            args->serve = true;
        } else if (a == "--emit-trace") {
            args->emitTrace = true;
        } else if (a == "--chaos") {
            args->chaos = true;
        } else if (a == "--replan-budget-sec") {
            const char *v = next("--replan-budget-sec");
            if (!v)
                return false;
            args->replanBudgetSec = std::atof(v);
        } else if (a == "--queue-depth") {
            const char *v = next("--queue-depth");
            if (!v)
                return false;
            args->queueDepth = static_cast<size_t>(std::atol(v));
        } else if (a == "--workers") {
            const char *v = next("--workers");
            if (!v)
                return false;
            args->workers = std::atoi(v);
        } else if (a == "--tenant-rate") {
            const char *v = next("--tenant-rate");
            if (!v)
                return false;
            args->tenantRate = std::atof(v);
        } else if (a == "--tenant-burst") {
            const char *v = next("--tenant-burst");
            if (!v)
                return false;
            args->tenantBurst = std::atof(v);
        } else if (a == "--revalidate-sec") {
            const char *v = next("--revalidate-sec");
            if (!v)
                return false;
            args->revalidateSec = std::atof(v);
        } else if (a == "--metrics-out") {
            const char *v = next("--metrics-out");
            if (!v)
                return false;
            args->metricsOut = v;
        } else if (a == "--metrics-interval-sec") {
            const char *v = next("--metrics-interval-sec");
            if (!v)
                return false;
            args->metricsIntervalSec = std::atof(v);
        } else if (a == "--trace-out") {
            const char *v = next("--trace-out");
            if (!v)
                return false;
            args->traceOut = v;
        } else if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else {
            std::cerr << "tessel_service: unknown option '" << a << "'\n";
            usage();
            return false;
        }
    }
    if (args->devices < 2 || args->devices % 2 != 0) {
        std::cerr << "tessel_service: --devices must be even and >= 2 "
                     "(K-Shape constraint)\n";
        return false;
    }
    return true;
}

void
printReport(const BatchReport &report, const std::string &caption)
{
    Table table(caption);
    table.setHeader({"query", "source", "found", "period", "wall (ms)",
                     "plan hash", "seeded from"});
    for (const QueryReport &q : report.queries) {
        table.addRow({q.label, q.source, q.found ? "yes" : "no",
                      std::to_string(q.period),
                      fmtDouble(q.wallSec * 1e3, 2),
                      q.planHash.substr(0, 12),
                      q.seededFrom.empty() ? "-"
                                           : q.seededFrom.substr(0, 12)});
    }
    table.print(std::cout);
    std::cout << report.queries.size() << " queries, "
              << report.uniqueInstances << " unique instances: "
              << report.memoryHits << " memory hits, " << report.diskHits
              << " disk hits, " << report.searches << " searches; "
              << "hit rate " << fmtPercent(report.hitRate())
              << ", wall " << fmtDouble(report.wallSec, 3) << " s, "
              << fmtDouble(report.throughputQps, 1) << " queries/s\n";
    const StoreStats &cs = report.cacheStats;
    std::cout << "cache lifetime: " << cs.memoryHits << " mem / "
              << cs.diskHits << " disk hits, " << cs.misses << " misses, "
              << cs.stores << " stores, " << cs.verifyFailures
              << " verify failures, " << cs.evictions << " evictions\n\n";
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

bool
writeStatsJson(const std::string &path, const BatchReport &report)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "{\n  \"queries\": [\n";
    for (size_t i = 0; i < report.queries.size(); ++i) {
        const QueryReport &q = report.queries[i];
        out << "    {\"label\": \"" << jsonEscape(q.label)
            << "\", \"fingerprint\": \"" << q.fingerprint
            << "\", \"plan_hash\": \"" << q.planHash << "\", \"source\": \""
            << q.source << "\", \"found\": " << (q.found ? "true" : "false")
            << ", \"period\": " << q.period
            << ", \"wall_sec\": " << q.wallSec << ", \"seeded_from\": \""
            << q.seededFrom << "\", \"seed_makespan\": " << q.seedMakespan
            << ", \"seed_nodes_pruned\": " << q.seedNodesPruned
            << ", \"value_sweeps\": " << q.valueSweeps
            << ", \"policy_improvements\": " << q.policyImprovements
            << "}"
            << (i + 1 < report.queries.size() ? "," : "") << "\n";
    }
    const StoreStats &cs = report.cacheStats;
    out << "  ],\n"
        << "  \"unique_instances\": " << report.uniqueInstances << ",\n"
        << "  \"memory_hits\": " << report.memoryHits << ",\n"
        << "  \"disk_hits\": " << report.diskHits << ",\n"
        << "  \"searches\": " << report.searches << ",\n"
        << "  \"hit_rate\": " << report.hitRate() << ",\n"
        << "  \"wall_sec\": " << report.wallSec << ",\n"
        << "  \"throughput_qps\": " << report.throughputQps << ",\n"
        << "  \"cache\": {\"memory_hits\": " << cs.memoryHits
        << ", \"disk_hits\": " << cs.diskHits
        << ", \"misses\": " << cs.misses << ", \"stores\": " << cs.stores
        << ", \"verify_failures\": " << cs.verifyFailures
        << ", \"evictions\": " << cs.evictions
        << ", \"lock_contended\": " << cs.lockContended
        << ", \"neighbor_fetches\": " << cs.neighborFetches << "}\n}\n";
    return static_cast<bool>(out);
}

std::vector<std::string>
planHashes(const BatchReport &report)
{
    std::vector<std::string> hashes;
    hashes.reserve(report.queries.size());
    for (const QueryReport &q : report.queries)
        hashes.push_back(q.planHash);
    return hashes;
}

/** Flip one byte of a store entry at @p offset (selftest corruption). */
bool
corruptEntry(const std::string &path, size_t offset)
{
    std::string bytes, err;
    if (!readFile(path, &bytes, &err) || bytes.size() <= offset)
        return false;
    bytes[offset] ^= 0x5a;
    return writeFileAtomic(path, bytes, &err);
}

int
runSelftest(const Args &args)
{
    std::string dir;
    if (!makeTempDir("tessel-service-selftest-", &dir)) {
        std::cerr << "selftest: cannot create temp dir\n";
        return 1;
    }
    int failures = 0;
    auto expect = [&](bool ok, const std::string &what) {
        if (!ok) {
            ++failures;
            std::cout << "FAIL: " << what << "\n";
        } else {
            std::cout << "ok: " << what << "\n";
        }
    };

    const std::vector<PlanQuery> batch =
        referenceShapeQueries(args.devices, args.hetero, args.budgetSec);

    ServiceOptions service_opts;
    service_opts.cacheDir = dir;
    service_opts.numThreads = args.threads;
    service_opts.neighborSeed = args.neighborSeed;

    // Cold: everything is a fresh search.
    PlanningService cold_service(service_opts);
    const BatchReport cold = cold_service.runBatch(batch);
    printReport(cold, "Selftest: cold batch (" + dir + ")");
    expect(cold.searches == cold.uniqueInstances,
           "cold batch searched every unique instance");

    // Warm, same service: pure memory hits, bit-identical plans.
    const BatchReport warm_mem = cold_service.runBatch(batch);
    printReport(warm_mem, "Selftest: warm batch (memory tier)");
    expect(warm_mem.memoryHits == warm_mem.uniqueInstances,
           "second batch was 100% memory hits");
    expect(planHashes(warm_mem) == planHashes(cold),
           "memory-tier plans bit-identical to cold plans");

    // Warm, new process stand-in (fresh LRU): verified disk hits.
    PlanningService disk_service(service_opts);
    const BatchReport warm_disk = disk_service.runBatch(batch);
    printReport(warm_disk, "Selftest: warm batch (disk tier, fresh LRU)");
    expect(warm_disk.diskHits == warm_disk.uniqueInstances,
           "fresh service answered 100% from verified disk entries");
    expect(planHashes(warm_disk) == planHashes(cold),
           "disk-tier plans bit-identical to cold plans");
    const double min_speedup =
        std::getenv("TESSEL_SERVICE_MIN_SPEEDUP")
            ? std::atof(std::getenv("TESSEL_SERVICE_MIN_SPEEDUP"))
            : 10.0;
    const double speedup =
        warm_disk.wallSec > 0.0 ? cold.wallSec / warm_disk.wallSec : 0.0;
    std::cout << "cold " << fmtDouble(cold.wallSec, 3) << " s vs warm "
              << fmtDouble(warm_disk.wallSec, 3) << " s => "
              << fmtDouble(speedup, 1) << "x\n";
    expect(speedup >= min_speedup,
           "warm batch >= " + fmtDouble(min_speedup, 0) +
               "x faster than cold");

    // Corruption: flip a payload byte of one entry; the next fresh
    // service must reject it, fall back to a search, and still produce
    // the identical plan.
    const std::vector<Hash128> entries = disk_service.cache().store().list();
    expect(!entries.empty(), "store has entries to corrupt");
    if (!entries.empty()) {
        const std::string victim =
            disk_service.cache().store().pathFor(entries.front());
        expect(corruptEntry(victim, 64), "corrupted one stored entry");
        PlanningService after_corruption(service_opts);
        const BatchReport rec = after_corruption.runBatch(batch);
        expect(rec.searches == 1 &&
                   rec.cacheStats.verifyFailures >= 1,
               "corrupted entry rejected and re-searched");
        expect(planHashes(rec) == planHashes(cold),
               "recovered plans bit-identical to cold plans");

        // Version bump: poke the format version field; the entry must
        // be rejected as unsupported, not misparsed.
        expect(corruptEntry(victim, kPlanVersionOffset),
               "bumped a stored entry's format version");
        PlanningService after_bump(service_opts);
        const BatchReport rec2 = after_bump.runBatch(batch);
        expect(rec2.searches == 1 &&
                   rec2.cacheStats.verifyFailures >= 1,
               "version-bumped entry rejected and re-searched");
        expect(planHashes(rec2) == planHashes(cold),
               "plans after version bump bit-identical to cold plans");
    }

    std::cout << (failures == 0 ? "selftest PASSED\n"
                                : "selftest FAILED\n");
    return failures == 0 ? 0 : 1;
}

/**
 * Print the reference batch as daemon trace lines (one per query).
 * --chaos overlays a drift or failure knob on every line, one injection
 * class per variant so a single replayed trace walks every replan path:
 * device failure on the hetero V line, speed drift on the remaining
 * hetero lines (incremental re-lowering), a link-parameter drift on the
 * mem-capped lines (structure-changing — falls back to a fresh
 * lowering), and a mild speed drift on the homogeneous lines (trivial
 * base cluster turning non-trivial).
 */
int
runEmitTrace(const Args &args)
{
    static const char *kShapes[] = {"V", "X", "M", "NN", "K"};
    static const char *kVariants[] = {"homogeneous", "mem-capped",
                                      "hetero"};
    int n = 0;
    for (const char *shape : kShapes) {
        for (const char *variant : kVariants) {
            const std::string v = variant;
            if (!args.hetero && v == "hetero")
                continue;
            TraceQuery q;
            q.id = "q" + std::to_string(++n);
            q.shape = shape;
            q.variant = variant;
            q.devices = args.devices;
            q.budgetSec = args.budgetSec;
            if (args.chaos) {
                if (v == "hetero" && std::string(shape) == "V") {
                    q.failDevice = 1;
                } else if (v == "hetero") {
                    q.driftDevice = 1;
                    q.driftSpeed = 2.0;
                } else if (v == "mem-capped") {
                    q.driftSrc = 0;
                    q.driftDst = 1;
                    q.driftLatency = 2.0;
                    q.driftTimePerMB = 0.5;
                } else {
                    q.driftDevice = 0;
                    q.driftSpeed = 1.25;
                }
            }
            std::cout << formatTraceLine(q) << "\n";
        }
    }
    return 0;
}

/**
 * Write one metrics snapshot: Prometheus text exposition at @p path,
 * the same snapshot as JSON at @p path.json. Both writes are atomic
 * (tmp + rename), so a reader never sees a torn exposition.
 */
bool
writeMetricsSnapshot(const std::string &path)
{
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    std::string err;
    bool ok = writeFileAtomic(path, toPrometheus(snap), &err);
    if (!ok)
        std::cerr << "tessel_service: cannot write " << path << ": "
                  << err << "\n";
    std::string jerr;
    if (!writeFileAtomic(path + ".json", toJson(snap) + "\n", &jerr)) {
        std::cerr << "tessel_service: cannot write " << path
                  << ".json: " << jerr << "\n";
        ok = false;
    }
    return ok;
}

/**
 * Periodic metrics writer plus final-snapshot handling for --metrics-out.
 * start() spawns the writer thread; finish() stops it, preserves the
 * last periodic snapshot as FILE.prev (two same-process snapshots let
 * tools/metrics_lint.py check counter monotonicity), and writes the
 * final snapshot.
 */
class MetricsWriter
{
  public:
    explicit MetricsWriter(std::string path, double intervalSec)
        : path_(std::move(path)),
          intervalSec_(intervalSec > 0.0 ? intervalSec : 1.0)
    {
    }

    void
    start()
    {
        if (path_.empty())
            return;
        thread_ = std::thread([this] { run(); });
    }

    bool
    finish()
    {
        if (path_.empty())
            return true;
        stop_.store(true, std::memory_order_release);
        if (thread_.joinable())
            thread_.join();
        if (wrote_.load(std::memory_order_relaxed))
            std::rename(path_.c_str(), (path_ + ".prev").c_str());
        return writeMetricsSnapshot(path_);
    }

  private:
    void
    run()
    {
        using clock = std::chrono::steady_clock;
        auto nextDue = clock::now() +
                       std::chrono::duration_cast<clock::duration>(
                           std::chrono::duration<double>(intervalSec_));
        while (!stop_.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            if (clock::now() < nextDue)
                continue;
            if (writeMetricsSnapshot(path_))
                wrote_.store(true, std::memory_order_relaxed);
            nextDue = clock::now() +
                      std::chrono::duration_cast<clock::duration>(
                          std::chrono::duration<double>(intervalSec_));
        }
    }

    const std::string path_;
    const double intervalSec_;
    std::atomic<bool> stop_{false};
    std::atomic<bool> wrote_{false};
    std::thread thread_;
};

/** Flush the flight recorder as Chrome trace-event JSON (--trace-out). */
void
writeTraceFile(const std::string &path)
{
    if (path.empty())
        return;
    std::string err;
    if (!writeChromeTrace(TraceRecorder::instance(), path, &err))
        std::cerr << "tessel_service: cannot write " << path << ": "
                  << err << "\n";
}

/**
 * Signal plumbing for --serve (async-signal-safe: the handler only
 * bumps a counter). The first SIGINT/SIGTERM stops admitting input and
 * drains in-flight queries — every accepted query still gets its
 * response, and nothing mid-search is cancelled, so the store never
 * sees a truncated plan. A second signal escalates: in-flight searches
 * are cancelled (answers flagged, not cached) so the process exits
 * promptly. sa_flags deliberately omits SA_RESTART so a signal breaks
 * the blocking stdin read instead of waiting for the next trace line.
 */
std::atomic<int> g_signals{0};

extern "C" void
onStopSignal(int)
{
    g_signals.fetch_add(1, std::memory_order_relaxed);
}

void
installStopHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = onStopSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

/**
 * Daemon mode: read one JSON query per stdin line, answer through a
 * ServiceLoop, and emit one JSON response per line on stdout (stdout is
 * shared by concurrent workers, so emission is serialized; responses
 * may interleave out of input order — match on "id"). Malformed lines
 * and unknown coordinates get an error response, never a crash. EOF
 * drains in-flight queries, prints a summary to stderr, and exits 0.
 */
int
runServe(const Args &args)
{
    ServiceLoopOptions loop_opts;
    loop_opts.service.cacheDir = args.cacheDir;
    loop_opts.service.numThreads = args.threads;
    loop_opts.service.neighborSeed = args.neighborSeed;
    loop_opts.service.perQueryBudgetSec = 0.0; // traces carry budgets
    loop_opts.service.replanBudgetSec = args.replanBudgetSec;
    loop_opts.queueDepth = args.queueDepth;
    loop_opts.workers = args.workers;
    loop_opts.defaultBudget.ratePerSec = args.tenantRate;
    loop_opts.defaultBudget.burst = args.tenantBurst;
    loop_opts.revalidateIntervalSec = args.revalidateSec;
    if (!args.traceOut.empty())
        TraceRecorder::instance().setEnabled(true);
    ServiceLoop loop(std::move(loop_opts));

    MetricsWriter metrics_writer(args.metricsOut, args.metricsIntervalSec);
    metrics_writer.start();

    installStopHandlers();
    // Escalation watcher: a second SIGINT/SIGTERM during the drain
    // cancels in-flight searches instead of waiting them out.
    std::atomic<bool> serve_done{false};
    std::thread watcher([&loop, &serve_done] {
        bool escalated = false;
        while (!serve_done.load(std::memory_order_acquire)) {
            if (!escalated &&
                g_signals.load(std::memory_order_relaxed) >= 2) {
                escalated = true;
                std::cerr << "tessel_service --serve: second signal, "
                             "cancelling in-flight searches\n";
                loop.shutdown(/*cancel_in_flight=*/true);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
    });

    std::mutex out_mu;
    std::atomic<uint64_t> stale_count{0};
    std::atomic<uint64_t> degraded_count{0};
    auto emit = [&](const ServiceLoop::Response &resp,
                    const std::string &id) {
        if (resp.report.stale)
            stale_count.fetch_add(1, std::memory_order_relaxed);
        if (resp.report.degraded)
            degraded_count.fetch_add(1, std::memory_order_relaxed);
        const std::string line = formatResponseLine(id, resp);
        std::lock_guard<std::mutex> lock(out_mu);
        std::cout << line << "\n" << std::flush;
    };
    auto emitError = [&](const std::string &id, const std::string &what) {
        ServiceLoop::Response resp;
        resp.admission = Admission::Accepted;
        resp.report.source = "error";
        resp.error = what;
        emit(resp, id);
    };

    std::string line;
    uint64_t lineno = 0;
    while (g_signals.load(std::memory_order_relaxed) == 0 &&
           std::getline(std::cin, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        TraceQuery tq;
        std::string err;
        if (!parseTraceLine(line, &tq, &err)) {
            emitError(tq.id, "parse error (line " +
                                 std::to_string(lineno) + "): " + err);
            continue;
        }
        const std::string id = tq.id;
        if (tq.isControl()) {
            if (tq.cmd == "stats") {
                // Live snapshot in-band: answered inline (not queued),
                // so it reflects the daemon state at the moment the
                // control line was read.
                const std::string stats_json =
                    toJson(MetricsRegistry::instance().snapshot());
                std::lock_guard<std::mutex> lock(out_mu);
                std::cout << "{";
                if (!id.empty())
                    std::cout << "\"id\": \"" << jsonEscape(id)
                              << "\", ";
                std::cout << "\"cmd\": \"stats\", \"stats\": "
                          << stats_json << "}\n"
                          << std::flush;
            } else {
                emitError(id, "unknown cmd \"" + tq.cmd + "\"");
            }
            continue;
        }
        auto done = [&emit, id](const ServiceLoop::Response &resp) {
            emit(resp, id);
        };
        if (tq.isReplan()) {
            std::optional<ReplanRequest> req = makeTraceReplan(tq, &err);
            if (!req) {
                emitError(id, err);
                continue;
            }
            loop.submit(std::move(*req), tq.tenant, std::move(done));
            continue;
        }
        std::optional<PlanQuery> query = makeTraceQuery(tq, &err);
        if (!query) {
            emitError(id, err);
            continue;
        }
        loop.submit(std::move(*query), tq.tenant, std::move(done));
    }
    if (g_signals.load(std::memory_order_relaxed) > 0)
        std::cerr << "tessel_service --serve: signal received, draining "
                     "in-flight queries (signal again to cancel)\n";
    loop.drain();
    const LoopStats stats = loop.stats();
    const uint64_t lock_contended =
        loop.service().cache().stats().lockContended;
    loop.shutdown();
    serve_done.store(true, std::memory_order_release);
    watcher.join();
    std::cerr << "tessel_service --serve: " << stats.submitted
              << " submitted, " << stats.completed << " answered ("
              << stale_count.load() << " stale, " << degraded_count.load()
              << " degraded), rejected " << stats.rejectedQueueFull
              << " queue-full / " << stats.rejectedThrottled
              << " throttled / " << stats.rejectedShutdown
              << " shutting-down, queue high water "
              << stats.queueHighWater
              << ", lock_contended=" << lock_contended << "\n";
    if (!stats.throttledByTenant.empty()) {
        std::cerr << "tessel_service --serve: throttled by tenant:";
        for (const auto &kv : stats.throttledByTenant)
            std::cerr << " "
                      << (kv.first.empty() ? "(anonymous)" : kv.first)
                      << "=" << kv.second;
        std::cerr << "\n";
    }
    const bool metrics_ok = metrics_writer.finish();
    writeTraceFile(args.traceOut);
    return metrics_ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, &args))
        return 2;
    if (args.selftest)
        return runSelftest(args);
    if (args.emitTrace)
        return runEmitTrace(args);
    if (args.serve)
        return runServe(args);

    const std::vector<PlanQuery> batch =
        referenceShapeQueries(args.devices, args.hetero, args.budgetSec);

    ServiceOptions service_opts;
    service_opts.cacheDir = args.cacheDir;
    service_opts.numThreads = args.threads;
    service_opts.neighborSeed = args.neighborSeed;
    if (!args.traceOut.empty())
        TraceRecorder::instance().setEnabled(true);
    PlanningService service(service_opts);

    const BatchReport report = service.runBatch(batch);
    printReport(report, "Planning service batch (" + args.cacheDir + ")");

    // Batch mode has no periodic writer; --metrics-out / --trace-out
    // still produce a final snapshot for offline inspection.
    if (!args.metricsOut.empty() && !writeMetricsSnapshot(args.metricsOut))
        return 1;
    writeTraceFile(args.traceOut);

    if (!args.jsonPath.empty() &&
        !writeStatsJson(args.jsonPath, report)) {
        std::cerr << "tessel_service: cannot write " << args.jsonPath
                  << "\n";
        return 1;
    }
    if (args.minHitRate >= 0.0 && report.hitRate() < args.minHitRate) {
        std::cerr << "tessel_service: hit rate "
                  << fmtPercent(report.hitRate()) << " below required "
                  << fmtPercent(args.minHitRate) << "\n";
        return 1;
    }
    return 0;
}
