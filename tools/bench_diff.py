#!/usr/bin/env python3
"""Gate a fresh BENCH_solver.json against the committed baseline.

Usage: bench_diff.py FRESH BASELINE

Compares per-bench (matched by name) and exits nonzero when

  * wall_ms regresses by more than the wall tolerance (default +25%,
    override with TESSEL_BENCH_WALL_TOL, a fraction: 0.25 = +25%).
    Wall clock is noisy on shared runners, so CI sets a generous
    tolerance; the real regression signal is the counter gate below.
  * the deterministic probe-pass budget -- relaxations + value_sweeps,
    summed so flipping the MCR mode cannot masquerade as a win --
    regresses by more than TESSEL_BENCH_COUNTER_TOL (default 0.10),
    or `nodes` changes at all (the search tree is deterministic; any
    drift is a behavior change, not noise).

Benches present on only one side are reported but never fail the gate,
so adding or retiring a bench does not require a lockstep baseline
update.
"""

import json
import os
import sys


def load_rows(path):
    with open(path) as f:
        rows = json.load(f)
    return {row["bench"]: row for row in rows}


def tolerance(env, default):
    try:
        return float(os.environ.get(env, ""))
    except ValueError:
        return default


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    fresh = load_rows(sys.argv[1])
    base = load_rows(sys.argv[2])
    wall_tol = tolerance("TESSEL_BENCH_WALL_TOL", 0.25)
    counter_tol = tolerance("TESSEL_BENCH_COUNTER_TOL", 0.10)

    failures = []
    for name in sorted(set(fresh) | set(base)):
        if name not in base:
            print(f"  new bench (no baseline): {name}")
            continue
        if name not in fresh:
            print(f"  baseline bench missing from fresh run: {name}")
            continue
        f, b = fresh[name], base[name]

        wall_f, wall_b = f["wall_ms"], b["wall_ms"]
        wall_ok = wall_f <= wall_b * (1.0 + wall_tol)
        passes_f = f.get("relaxations", 0) + f.get("value_sweeps", 0)
        passes_b = b.get("relaxations", 0) + b.get("value_sweeps", 0)
        passes_ok = passes_f <= passes_b * (1.0 + counter_tol)
        nodes_ok = f.get("nodes", 0) == b.get("nodes", 0)

        status = "ok" if (wall_ok and passes_ok and nodes_ok) else "FAIL"
        print(
            f"  {status:4s} {name}: wall {wall_b:.1f} -> {wall_f:.1f} ms, "
            f"probe passes {passes_b} -> {passes_f}, "
            f"nodes {b.get('nodes', 0)} -> {f.get('nodes', 0)}"
        )
        if not wall_ok:
            failures.append(
                f"{name}: wall_ms {wall_f:.1f} > {wall_b:.1f} "
                f"* (1 + {wall_tol})"
            )
        if not passes_ok:
            failures.append(
                f"{name}: probe passes {passes_f} > {passes_b} "
                f"* (1 + {counter_tol})"
            )
        if not nodes_ok:
            failures.append(
                f"{name}: nodes {f.get('nodes', 0)} != baseline "
                f"{b.get('nodes', 0)} (deterministic; must match)"
            )

    if failures:
        print("bench_diff: REGRESSION", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print("bench_diff: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
