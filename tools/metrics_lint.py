#!/usr/bin/env python3
"""Lint a tessel_service metrics snapshot.

Checks, against the Prometheus text exposition written by
``tessel_service --metrics-out FILE`` (and the JSON twin at FILE.json):

  1. The exposition parses and every series (name + label set) is
     unique.
  2. Every exported dotted metric name appears in the README
     "Observability" catalog (exported-but-undocumented is an error;
     documented-but-absent is a warning, since some series only
     materialise under load, e.g. ``loop.tenant_throttled``).
  3. Counter-family samples (``*_total``, histogram ``_count`` and
     cumulative ``_bucket``) are monotonically non-decreasing versus an
     earlier same-process snapshot (FILE.prev, kept by the daemon's
     periodic writer), when one exists.
  4. With --stats-json (a ``tessel_service --json`` batch stats file),
     the ``store.*`` counters must equal the cache-lifetime StoreStats
     block exactly — the registry mirrors the tested stats structs, so
     any drift is a mirroring bug.

Usage:
  tools/metrics_lint.py METRICS_FILE [--prev FILE] [--json FILE]
                        [--readme README.md] [--stats-json FILE]

Exits 0 when clean (warnings allowed), 1 on any error.
"""

import argparse
import json
import os
import re
import sys

SERIES_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
DOTTED_RE = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)`")


def parse_prometheus(path):
    """Return ({series_key: float_value}, [errors]). series_key is the
    raw 'name{labels}' string."""
    series = {}
    errors = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            m = SERIES_RE.match(line)
            if not m:
                errors.append(f"{path}:{lineno}: unparsable line: {line!r}")
                continue
            labels = m.group("labels") or ""
            key = m.group("name") + ("{" + labels + "}" if labels else "")
            if key in series:
                errors.append(f"{path}:{lineno}: duplicate series {key}")
                continue
            try:
                series[key] = float(m.group("value"))
            except ValueError:
                errors.append(
                    f"{path}:{lineno}: bad sample value {m.group('value')!r}"
                )
    return series, errors


def exported_names(json_path):
    """Dotted metric names from the JSON snapshot twin."""
    with open(json_path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    return sorted({m["name"] for m in doc.get("metrics", [])})


def documented_names(readme_path):
    """Backticked dotted names inside the README Observability section."""
    with open(readme_path, "r", encoding="utf-8") as fh:
        text = fh.read()
    m = re.search(r"^##\s+Observability\s*$(.*?)(?=^##\s|\Z)", text,
                  re.MULTILINE | re.DOTALL)
    if not m:
        return None
    return sorted(set(DOTTED_RE.findall(m.group(1))))


def is_counter_sample(key):
    name = key.split("{", 1)[0]
    return (name.endswith("_total") or name.endswith("_count")
            or name.endswith("_bucket") or name.endswith("_sum"))


def check_monotonic(prev, cur):
    errors = []
    for key, prev_value in prev.items():
        if not is_counter_sample(key):
            continue
        cur_value = cur.get(key)
        if cur_value is None:
            errors.append(f"counter series {key} vanished vs .prev")
        elif cur_value < prev_value:
            errors.append(
                f"counter series {key} went backwards: "
                f"{prev_value} -> {cur_value}"
            )
    return errors


# registry series name -> key in the batch stats "cache" block
STORE_STATS_FIELDS = {
    "store_memory_hits_total": "memory_hits",
    "store_disk_hits_total": "disk_hits",
    "store_misses_total": "misses",
    "store_stores_total": "stores",
    "store_verify_failures_total": "verify_failures",
    "store_evictions_total": "evictions",
    "store_lock_contended_total": "lock_contended",
    "store_neighbor_fetches_total": "neighbor_fetches",
}


def check_store_stats(series, stats_path):
    errors = []
    with open(stats_path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    cache = doc.get("cache")
    if cache is None:
        return [f"{stats_path}: no \"cache\" block"]
    for metric, field in STORE_STATS_FIELDS.items():
        if field not in cache:
            continue
        got = series.get(metric)
        want = float(cache[field])
        if got is None:
            errors.append(f"store counter {metric} missing from snapshot")
        elif got != want:
            errors.append(
                f"{metric} = {got} but StoreStats {field} = {want}"
            )
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("metrics", help="Prometheus text snapshot")
    ap.add_argument("--prev", help="earlier same-process snapshot "
                    "(default: METRICS.prev when present)")
    ap.add_argument("--json", dest="json_path",
                    help="JSON snapshot twin (default: METRICS.json)")
    ap.add_argument("--readme", default=None,
                    help="README with the Observability catalog "
                    "(default: README.md next to the repo root)")
    ap.add_argument("--stats-json",
                    help="tessel_service --json batch stats; store.* "
                    "counters must match its cache block exactly")
    args = ap.parse_args()

    errors = []
    warnings = []

    series, parse_errors = parse_prometheus(args.metrics)
    errors += parse_errors
    if not series:
        errors.append(f"{args.metrics}: no series found")

    prev_path = args.prev or args.metrics + ".prev"
    if os.path.exists(prev_path):
        prev_series, prev_errors = parse_prometheus(prev_path)
        errors += prev_errors
        errors += check_monotonic(prev_series, series)
    elif args.prev:
        errors.append(f"--prev {args.prev}: no such file")
    else:
        warnings.append(f"no {prev_path}; monotonicity not checked")

    json_path = args.json_path or args.metrics + ".json"
    readme = args.readme
    if readme is None:
        here = os.path.dirname(os.path.abspath(__file__))
        readme = os.path.join(here, os.pardir, "README.md")
    if os.path.exists(json_path):
        try:
            exported = exported_names(json_path)
        except (ValueError, KeyError) as e:
            errors.append(f"{json_path}: bad JSON snapshot: {e}")
            exported = []
        if os.path.exists(readme):
            documented = documented_names(readme)
            if documented is None:
                errors.append(f"{readme}: no '## Observability' section")
            else:
                for name in exported:
                    if name not in documented:
                        errors.append(
                            f"exported metric {name} not documented in "
                            f"the README Observability catalog"
                        )
                for name in documented:
                    if name not in exported:
                        warnings.append(
                            f"documented metric {name} absent from this "
                            f"snapshot (fine if it only appears under "
                            f"load)"
                        )
        else:
            errors.append(f"README not found at {readme}")
    else:
        errors.append(f"JSON snapshot twin {json_path} missing")

    if args.stats_json:
        if os.path.exists(args.stats_json):
            errors += check_store_stats(series, args.stats_json)
        else:
            errors.append(f"--stats-json {args.stats_json}: no such file")

    for w in warnings:
        print(f"metrics_lint: warning: {w}")
    for e in errors:
        print(f"metrics_lint: error: {e}")
    print(f"metrics_lint: {len(series)} series, {len(errors)} errors, "
          f"{len(warnings)} warnings")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
